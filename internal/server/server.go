// Package server is tierdb's concurrent network service layer: a TCP
// server exposing the engine's operations over the CRC-framed binary
// protocol of proto.go. It is deliberately root-decoupled — the engine
// is an interface, so the package has no dependency on the tierdb root
// package (which wires it up via Config.ListenAddr) and tests can run
// sessions against a fake.
//
// The server is production-shaped rather than demo-shaped:
//
//   - Admission control. A session semaphore (Config.MaxSessions) caps
//     concurrent connections and an inflight semaphore
//     (Config.MaxInflight) caps requests executing in the engine at
//     once. Both shed load with a typed overloaded response the moment
//     they are full — nothing queues unboundedly.
//   - Deadlines. Every frame read carries a read deadline and every
//     response write a write deadline, so a stalled or vanished peer
//     can never pin a session goroutine forever.
//   - Graceful drain. Shutdown stops accepting, nudges idle sessions
//     awake, answers late requests with StatusDraining, waits for
//     inflight work to finish writing its responses, and only then
//     returns — so the owner can close the engine (WAL, merge
//     scheduler) with no request mid-flight.
//   - Observability. server.{sessions,inflight,requests_total,rejects,
//     request_ns} land in the engine's metrics registry and therefore
//     in /metrics, /stats.json and `tierctl stats`.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tierdb/internal/explain"
	"tierdb/internal/metrics"
	"tierdb/internal/schema"
	"tierdb/internal/telemetry"
	"tierdb/internal/trace"
	"tierdb/internal/value"
)

// Engine is the surface the service layer needs from the database. The
// tierdb root package adapts *tierdb.DB to it; tests substitute fakes.
// Implementations must be safe for concurrent use.
//
// Every method receives the request's context, which carries the
// server span when the request is traced; engines propagate it into
// execution and WAL commit so their spans land in the same tree.
type Engine interface {
	CreateTable(ctx context.Context, name string, fields []schema.Field) error
	Insert(ctx context.Context, table string, row []value.Value) error
	Delete(ctx context.Context, table string, id uint64) error
	Update(ctx context.Context, table string, id uint64, row []value.Value) error
	BulkLoad(ctx context.Context, table string, rows [][]value.Value) error
	// Select runs a conjunctive query; trace is non-empty when traced
	// execution was requested.
	Select(ctx context.Context, table string, preds []Predicate, project []string, traced bool) (*Result, string, error)
	Checkpoint(ctx context.Context) error
	// StatsJSON returns the engine metrics snapshot as JSON.
	StatsJSON() ([]byte, error)
	Rows(table string) (int, error)
	Tables() []string
	// Advise runs the layout advisor; query and report are JSON
	// (obsrv.AdvisorQuery / obsrv.AdvisorReport).
	Advise(table string, query []byte) ([]byte, error)
	ApplyLayout(table string, inDRAM []bool) error
	// Adaptive inspects or toggles the adaptive placement scheduler
	// (AdaptiveStatus/Enable/Disable); the report is JSON
	// (obsrv.AdaptiveReport).
	Adaptive(sub byte) ([]byte, error)
	// Explain runs EXPLAIN (analyze=false) or EXPLAIN ANALYZE
	// (analyze=true) for the query given in wire form; the report is
	// JSON (explain.Plan).
	Explain(ctx context.Context, table string, specs []explain.PredicateSpec, project []string, analyze bool) ([]byte, error)
}

// Config tunes the service layer. The zero value selects the defaults.
type Config struct {
	// MaxSessions caps concurrent connections; further connects are
	// shed with an overloaded frame and closed. 0 selects
	// DefaultMaxSessions.
	MaxSessions int
	// MaxInflight caps requests executing in the engine at once across
	// all sessions; excess requests are answered with an overloaded
	// response immediately instead of queuing. 0 selects
	// DefaultMaxInflight.
	MaxInflight int
	// ReadTimeout bounds how long a session waits for the next request
	// frame (i.e. the idle timeout). 0 selects DefaultReadTimeout.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response. 0 selects
	// DefaultWriteTimeout.
	WriteTimeout time.Duration
	// DrainTimeout bounds how long Shutdown waits for inflight
	// requests before force-closing their connections. 0 selects
	// DefaultDrainTimeout.
	DrainTimeout time.Duration
	// Registry receives the server.* instruments; nil runs unmetered.
	Registry *metrics.Registry
	// Tracer records server spans: one "server.request" span per
	// request, continuing the client's trace when the request carries
	// the wire header, locally sampled otherwise. Nil disables server
	// tracing.
	Tracer *trace.Tracer
	// Logger receives server log records; nil discards them.
	Logger *slog.Logger
	// RequestLog, when set, emits one structured "wide event" per
	// request on Logger: trace ID, opcode, table, rows, queue wait,
	// duration and status — the greppable join key to /trace/{id}.
	RequestLog bool
}

// Defaults for Config's zero values.
const (
	DefaultMaxSessions  = 256
	DefaultMaxInflight  = 64
	DefaultReadTimeout  = 5 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
	DefaultDrainTimeout = 10 * time.Second
)

// Server serves the tierdb wire protocol on listeners passed to Serve.
type Server struct {
	engine   Engine
	cfg      Config
	tracer   *trace.Tracer
	log      *slog.Logger
	inflight chan struct{}

	sessions  *metrics.Gauge
	inflightG *metrics.Gauge
	requests  *metrics.Counter
	rejects   *metrics.Counter
	errs      *metrics.Counter
	requestNs *metrics.Histogram

	draining atomic.Bool

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	nSessions int
	wg        sync.WaitGroup // one per live session
}

// New builds a server for the engine. Call Serve to start accepting.
func New(engine Engine, cfg Config) *Server {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = DefaultReadTimeout
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	r := cfg.Registry
	log := cfg.Logger
	if log == nil {
		log = telemetry.Nop()
	}
	return &Server{
		engine:    engine,
		cfg:       cfg,
		tracer:    cfg.Tracer,
		log:       log,
		inflight:  make(chan struct{}, cfg.MaxInflight),
		sessions:  r.Gauge("server.sessions"),
		inflightG: r.Gauge("server.inflight"),
		requests:  r.Counter("server.requests_total"),
		rejects:   r.Counter("server.rejects"),
		errs:      r.Counter("server.errors"),
		requestNs: r.Histogram("server.request_ns", metrics.RequestLatencyBuckets()),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on l until the listener fails or the server
// shuts down. It blocks; run it in a goroutine. Multiple listeners may
// be served concurrently.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		l.Close()
		return ErrDraining
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		if !s.admitSession(conn) {
			continue
		}
		s.wg.Add(1)
		go s.session(conn)
	}
}

// admitSession registers the connection against the session cap. Over
// capacity (or while draining) it sheds the connection: a best-effort
// typed error frame, then close.
func (s *Server) admitSession(conn net.Conn) bool {
	status := byte(StatusOK)
	s.mu.Lock()
	switch {
	case s.draining.Load():
		status = StatusDraining
	case s.nSessions >= s.cfg.MaxSessions:
		status = StatusOverloaded
	default:
		s.nSessions++
		s.conns[conn] = struct{}{}
	}
	s.mu.Unlock()
	if status == StatusOK {
		s.sessions.Add(1)
		return true
	}
	s.rejects.Inc()
	msg := ErrOverloaded.Error()
	if status == StatusDraining {
		msg = ErrDraining.Error()
	}
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	writeFrame(conn, encodeResponse(nil, 0, Response{Status: status, Msg: msg}))
	conn.Close()
	return false
}

// session runs one connection: read a frame, handle it, write the
// response, repeat. Responses go out in request order, which is what
// lets clients pipeline.
func (s *Server) session(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.nSessions--
		s.mu.Unlock()
		s.sessions.Add(-1)
		conn.Close()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	respond := func(op byte, resp Response) bool {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if err := writeFrame(bw, encodeResponse(nil, op, resp)); err != nil {
			return false
		}
		return bw.Flush() == nil
	}
	for {
		if s.draining.Load() {
			// Draining: answer whatever the client already pipelined
			// with StatusDraining, then close. An expired deadline only
			// interrupts reads that would touch the socket, so frames
			// already sitting in the buffer still decode.
			conn.SetReadDeadline(time.Now())
		} else {
			conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		payload, err := ReadFrame(br)
		if err != nil {
			// Clean EOF, peer timeout and drain wakeups all end the
			// session silently. Frame-level protocol damage gets a
			// best-effort typed error frame first — the stream is
			// poisoned, so the session cannot continue either way.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return
			}
			if errors.Is(err, ErrProtocol) && !s.draining.Load() {
				respond(0, Response{Status: StatusBadRequest, Msg: err.Error()})
			}
			return
		}
		if s.draining.Load() {
			respond(0, Response{Status: StatusDraining, Msg: ErrDraining.Error()})
			return
		}
		req, err := decodeRequest(payload)
		if err != nil {
			// CRC-valid but malformed payload: the stream is still
			// frame-aligned, so answer the error and keep the session.
			s.errs.Inc()
			if !respond(0, Response{Status: StatusBadRequest, Msg: err.Error()}) {
				return
			}
			continue
		}
		// The server span covers everything from decode to response:
		// admission (inflight-wait) plus engine time. A request carrying
		// the wire trace header continues the client's trace (sampling
		// was decided upstream); a bare request gets a locally-sampled
		// root span.
		var span *trace.Span
		if req.TraceID != 0 {
			span = s.tracer.StartRemote(req.TraceID, req.SpanID, "server.request")
		} else {
			span = s.tracer.Start("server.request")
		}
		span.SetAttr(trace.String("op", OpName(req.Op)))
		if req.Table != "" {
			span.SetAttr(trace.String("table", req.Table))
		}
		admitted := time.Now()
		select {
		case s.inflight <- struct{}{}:
		default:
			s.rejects.Inc()
			span.SetAttr(trace.String("status", statusName(StatusOverloaded)))
			span.SetError(ErrOverloaded)
			span.End()
			s.requestEvent(span, req, StatusOverloaded, 0, 0, admitted)
			if !respond(req.Op, Response{Status: StatusOverloaded, Msg: ErrOverloaded.Error()}) {
				return
			}
			continue
		}
		// Admission is a try-acquire today, so the wait is the decode-to
		// -acquire gap; the span still records it so a future queuing
		// admission policy is observable for free.
		queueWait := time.Since(admitted)
		span.ChildAt("server.admission", admitted.UnixNano(), admitted.UnixNano()+queueWait.Nanoseconds())
		s.inflightG.Add(1)
		start := time.Now()
		engineSpan := span.Child("server.engine")
		resp := s.handle(trace.NewContext(context.Background(), engineSpan), req)
		if resp.Status != StatusOK {
			engineSpan.SetError(errors.New(resp.Msg))
		}
		engineSpan.End()
		s.requestNs.Observe(time.Since(start).Nanoseconds())
		s.inflightG.Add(-1)
		<-s.inflight
		s.requests.Inc()
		if resp.Status != StatusOK {
			s.errs.Inc()
		}
		rows := len(resp.IDs)
		span.SetAttr(
			trace.String("status", statusName(resp.Status)),
			trace.Int("rows", int64(rows)),
			trace.Int("queue_wait_ns", queueWait.Nanoseconds()),
		)
		if resp.Status != StatusOK {
			span.SetError(errors.New(resp.Msg))
		}
		span.End()
		s.requestEvent(span, req, resp.Status, rows, queueWait, admitted)
		if !respond(req.Op, resp) {
			return
		}
	}
}

// requestEvent emits the per-request wide event when Config.RequestLog
// is set: one record joining the request's trace ID with what happened
// to it. Failures log at Warn so they surface even at the default
// level.
func (s *Server) requestEvent(span *trace.Span, req Request, status byte, rows int, queueWait time.Duration, start time.Time) {
	if !s.cfg.RequestLog {
		return
	}
	traceID := req.TraceID
	if span != nil {
		traceID = span.Trace
	}
	level := slog.LevelInfo
	if status != StatusOK {
		level = slog.LevelWarn
	}
	s.log.LogAttrs(context.Background(), level, "request",
		slog.String("trace_id", traceID.String()),
		slog.String("op", OpName(req.Op)),
		slog.String("table", req.Table),
		slog.Int("rows", rows),
		slog.Int64("queue_wait_ns", queueWait.Nanoseconds()),
		slog.Int64("duration_ns", time.Since(start).Nanoseconds()),
		slog.String("status", statusName(status)),
	)
}

// OpName names a wire opcode for spans, logs and tooling.
func OpName(op byte) string {
	switch op {
	case OpPing:
		return "ping"
	case OpCreateTable:
		return "create_table"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	case OpBulkLoad:
		return "bulk_load"
	case OpSelect:
		return "select"
	case OpCheckpoint:
		return "checkpoint"
	case OpStats:
		return "stats"
	case OpRows:
		return "rows"
	case OpTables:
		return "tables"
	case OpAdvise:
		return "advise"
	case OpApplyLayout:
		return "apply_layout"
	case OpAdaptive:
		return "adaptive"
	case OpExplain:
		return "explain"
	default:
		return fmt.Sprintf("op_%d", op)
	}
}

// statusName names a wire status for spans and logs.
func statusName(status byte) string {
	switch status {
	case StatusOK:
		return "ok"
	case StatusEngineErr:
		return "engine_err"
	case StatusOverloaded:
		return "overloaded"
	case StatusBadRequest:
		return "bad_request"
	case StatusDraining:
		return "draining"
	default:
		return fmt.Sprintf("status_%d", status)
	}
}

// handle executes one decoded request against the engine. ctx carries
// the engine span for traced requests.
func (s *Server) handle(ctx context.Context, req Request) Response {
	fail := func(err error) Response {
		return Response{Status: StatusEngineErr, Msg: err.Error()}
	}
	switch req.Op {
	case OpPing:
		return Response{}
	case OpCreateTable:
		if err := s.engine.CreateTable(ctx, req.Table, req.Fields); err != nil {
			return fail(err)
		}
	case OpInsert:
		if err := s.engine.Insert(ctx, req.Table, req.Row); err != nil {
			return fail(err)
		}
	case OpDelete:
		if err := s.engine.Delete(ctx, req.Table, req.RowID); err != nil {
			return fail(err)
		}
	case OpUpdate:
		if err := s.engine.Update(ctx, req.Table, req.RowID, req.Row); err != nil {
			return fail(err)
		}
	case OpBulkLoad:
		if err := s.engine.BulkLoad(ctx, req.Table, req.Rows); err != nil {
			return fail(err)
		}
	case OpSelect:
		res, trace, err := s.engine.Select(ctx, req.Table, req.Predicates, req.Project, req.Traced)
		if err != nil {
			return fail(err)
		}
		return Response{IDs: res.IDs, Rows: res.Rows, Trace: trace}
	case OpCheckpoint:
		if err := s.engine.Checkpoint(ctx); err != nil {
			return fail(err)
		}
	case OpStats:
		blob, err := s.engine.StatsJSON()
		if err != nil {
			return fail(err)
		}
		return Response{Blob: blob}
	case OpRows:
		n, err := s.engine.Rows(req.Table)
		if err != nil {
			return fail(err)
		}
		return Response{Count: uint64(n)}
	case OpTables:
		return Response{Names: s.engine.Tables()}
	case OpAdvise:
		blob, err := s.engine.Advise(req.Table, req.Blob)
		if err != nil {
			return fail(err)
		}
		return Response{Blob: blob}
	case OpApplyLayout:
		if err := s.engine.ApplyLayout(req.Table, req.Layout); err != nil {
			return fail(err)
		}
	case OpAdaptive:
		blob, err := s.engine.Adaptive(req.Sub)
		if err != nil {
			return fail(err)
		}
		return Response{Blob: blob}
	case OpExplain:
		blob, err := s.engine.Explain(ctx, req.Table, req.Specs, req.Project, req.Analyze)
		if err != nil {
			return fail(err)
		}
		return Response{Blob: blob}
	default:
		return Response{Status: StatusBadRequest, Msg: fmt.Sprintf("unknown opcode %d", req.Op)}
	}
	return Response{}
}

// Shutdown drains the server gracefully: stop accepting, wake idle
// sessions (their next read returns immediately and they close after
// answering StatusDraining to anything already in their buffers), wait
// up to DrainTimeout for inflight requests to finish writing their
// responses, then force-close whatever remains. It does NOT close the
// engine — the owner does that after Shutdown returns, so no request
// is mid-flight when the WAL and merge scheduler wind down.
//
// The returned error is non-nil only when the drain timed out and
// connections had to be force-closed.
func (s *Server) Shutdown() error {
	s.draining.Store(true)
	s.mu.Lock()
	for l := range s.listeners {
		l.Close()
	}
	// Nudge every blocked read awake; sessions mid-request finish and
	// notice the drain flag before reading again.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(s.cfg.DrainTimeout):
	}
	s.mu.Lock()
	n := len(s.conns)
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	// Do not wait for the session goroutines themselves: one may be
	// wedged inside an engine call that force-closing its socket cannot
	// interrupt. It cleans itself up whenever the engine returns.
	return fmt.Errorf("server: drain timed out, force-closed %d sessions", n)
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }
