package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"tierdb/internal/server"
	"tierdb/internal/server/client"
	"tierdb/internal/trace"
	"tierdb/internal/value"
)

// findSpans returns the spans with the given name among ss.
func findSpans(ss []*trace.Span, name string) []*trace.Span {
	var out []*trace.Span
	for _, s := range ss {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// checkSpanTree asserts structural sanity over one trace's spans: every
// parent link resolves inside the trace, clocks are ordered, and every
// child interval nests inside its parent (all spans here come from one
// process, so wall clocks are comparable).
func checkSpanTree(t *testing.T, spans []*trace.Span) {
	t.Helper()
	byID := make(map[trace.SpanID]*trace.Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.EndNs < s.StartNs {
			t.Errorf("span %s %q ends before it starts: %d < %d", s.ID, s.Name, s.EndNs, s.StartNs)
		}
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			// The root's parent may live in another ring (the client's
			// span when checking a server ring); only flag links that
			// dangle inside the same ring's tree.
			continue
		}
		if s.StartNs < p.StartNs || s.EndNs > p.EndNs {
			t.Errorf("span %q [%d,%d] escapes parent %q [%d,%d]",
				s.Name, s.StartNs, s.EndNs, p.Name, p.StartNs, p.EndNs)
		}
	}
}

// TestTracePropagation proves the wire header carries the client's
// trace identity to the server: the server's spans land in the same
// trace, parented under the client's send span.
func TestTracePropagation(t *testing.T) {
	serverTracer := trace.New(trace.Options{SampleRate: 0}) // remote-sampled only
	clientTracer := trace.New(trace.Options{SampleRate: 1})
	_, addr := boot(t, newFakeEngine(), server.Config{Tracer: serverTracer})
	c, err := client.Dial(client.Config{Addr: addr, PoolSize: 1, Tracer: clientTracer})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Insert("t", []value.Value{value.NewInt(7)}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Select("t", nil, "c0"); err != nil {
		t.Fatal(err)
	}

	sends := findSpans(clientTracer.Ring().Snapshot(), "client.send")
	if len(sends) != 2 {
		t.Fatalf("want 2 client.send spans, got %d", len(sends))
	}
	for _, send := range sends {
		// The server span ends before the response frame is written, so
		// by the time the client call returned it is in the server ring.
		srvSpans := serverTracer.Ring().ByTrace(send.Trace)
		reqs := findSpans(srvSpans, "server.request")
		if len(reqs) != 1 {
			t.Fatalf("trace %s: want 1 server.request span, got %d", send.Trace, len(reqs))
		}
		req := reqs[0]
		if req.Trace != send.Trace {
			t.Errorf("server span trace %s != client trace %s", req.Trace, send.Trace)
		}
		if req.Parent != send.ID {
			t.Errorf("server.request parent %s != client.send id %s", req.Parent, send.ID)
		}
		for _, name := range []string{"server.admission", "server.engine"} {
			kids := findSpans(srvSpans, name)
			if len(kids) != 1 {
				t.Fatalf("trace %s: want 1 %s span, got %d", send.Trace, name, len(kids))
			}
			if kids[0].Parent != req.ID {
				t.Errorf("%s parent %s != server.request id %s", name, kids[0].Parent, req.ID)
			}
		}
		checkSpanTree(t, srvSpans)
		// The client span brackets the whole round trip.
		if req.StartNs < send.StartNs || req.EndNs > send.EndNs {
			t.Errorf("server.request [%d,%d] escapes client.send [%d,%d]",
				req.StartNs, req.EndNs, send.StartNs, send.EndNs)
		}
	}
}

// TestServerLocalSampling proves a bare (header-less) request can still
// be sampled server-side as a root span.
func TestServerLocalSampling(t *testing.T) {
	serverTracer := trace.New(trace.Options{SampleRate: 1})
	_, addr := boot(t, newFakeEngine(), server.Config{Tracer: serverTracer})
	c, err := client.Dial(client.Config{Addr: addr, PoolSize: 1}) // no client tracer
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	reqs := findSpans(serverTracer.Ring().Snapshot(), "server.request")
	if len(reqs) != 1 {
		t.Fatalf("want 1 locally-sampled server.request, got %d", len(reqs))
	}
	if reqs[0].Parent != 0 {
		t.Errorf("bare request's server span should be a root, has parent %s", reqs[0].Parent)
	}
}

// legacyServer speaks the pre-tracing protocol: any frame opening with
// the OpTraced envelope is an unknown opcode to it, answered with
// StatusBadRequest exactly like the old decoder did. It counts how many
// enveloped frames it saw.
type legacyServer struct {
	ln     net.Listener
	traced atomic.Int64
	wg     sync.WaitGroup
}

func startLegacyServer(t *testing.T) *legacyServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ls := &legacyServer{ln: ln}
	ls.wg.Add(1)
	go func() {
		defer ls.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			ls.wg.Add(1)
			go func() {
				defer ls.wg.Done()
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					payload, err := server.ReadFrame(br)
					if err != nil {
						return
					}
					if payload[0] == server.OpTraced {
						ls.traced.Add(1)
						server.WriteResponse(conn, 0, server.Response{
							Status: server.StatusBadRequest,
							Msg:    "server: unknown opcode 15",
						})
						continue
					}
					server.WriteResponse(conn, payload[0], server.Response{Status: server.StatusOK})
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close(); ls.wg.Wait() })
	return ls
}

// TestLegacyPeerInterop proves the compat rules end to end: a tracing
// client talking to a pre-tracing server gets its first enveloped
// request rejected, retries header-less, succeeds, and never sends the
// envelope again.
func TestLegacyPeerInterop(t *testing.T) {
	ls := startLegacyServer(t)
	clientTracer := trace.New(trace.Options{SampleRate: 1})
	c, err := client.Dial(client.Config{Addr: ls.ln.Addr().String(), PoolSize: 1, Tracer: clientTracer})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("first ping against legacy server: %v", err)
	}
	if got := ls.traced.Load(); got != 1 {
		t.Fatalf("legacy server saw %d enveloped frames after first request, want 1", got)
	}
	// The client learned the peer is legacy: subsequent requests go out
	// bare immediately, no doubled round trips.
	for i := 0; i < 3; i++ {
		if err := c.Ping(); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	if got := ls.traced.Load(); got != 1 {
		t.Errorf("legacy server saw %d enveloped frames total, want 1 (client should stop sending the header)", got)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output
// written from session goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

// TestRequestLogWideEvent proves Config.RequestLog emits one structured
// record per request carrying the trace ID join key and the request's
// outcome, and that failures log at Warn.
func TestRequestLogWideEvent(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	serverTracer := trace.New(trace.Options{SampleRate: 1})
	_, addr := boot(t, newFakeEngine(), server.Config{
		Tracer:     serverTracer,
		Logger:     logger,
		RequestLog: true,
	})
	c, err := client.Dial(client.Config{Addr: addr, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Insert("t", []value.Value{value.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("missing", []value.Value{value.NewInt(1)}); err == nil {
		t.Fatal("insert into missing table should fail")
	}

	// The wide event is written before the response frame, so both
	// records are in the buffer once the calls returned.
	var events []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		if m["msg"] == "request" {
			events = append(events, m)
		}
	}
	if len(events) != 2 {
		t.Fatalf("want 2 request events, got %d:\n%s", len(events), buf.String())
	}
	ok, failed := events[0], events[1]
	if ok["op"] != "insert" || ok["table"] != "t" || ok["level"] != "INFO" {
		t.Errorf("first event wrong: %v", ok)
	}
	if failed["level"] != "WARN" || failed["table"] != "missing" {
		t.Errorf("failure event should be WARN for table missing: %v", failed)
	}
	for i, e := range events {
		id, _ := e["trace_id"].(string)
		if _, err := trace.ParseTraceID(id); err != nil {
			t.Errorf("event %d trace_id %q does not parse: %v", i, id, err)
		}
		for _, key := range []string{"duration_ns", "queue_wait_ns", "status"} {
			if _, present := e[key]; !present {
				t.Errorf("event %d missing %q: %v", i, key, e)
			}
		}
	}
}
