package server

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzServerFrame throws arbitrary byte streams at the exact pipeline a
// session runs on every frame — ReadFrame then decodeRequest — and
// proves hostile input never panics and never produces an untyped
// error: every failure is ErrProtocol (or clean EOF at a frame
// boundary). Valid frames that decode must re-encode through the codec
// without error, so the fuzzer also exercises the response path on
// whatever requests it manages to construct.
func FuzzServerFrame(f *testing.F) {
	// Seed with every opcode's canonical encoding plus classic hostile
	// shapes: truncations, a huge length prefix, a corrupt CRC.
	for _, req := range sampleRequests() {
		frame := appendFrame(nil, encodeRequest(nil, req))
		f.Add(frame)
		f.Add(frame[:len(frame)/2])
		flipped := append([]byte(nil), frame...)
		flipped[len(flipped)-1] ^= 0x80
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))

	f.Fuzz(func(t *testing.T, stream []byte) {
		br := bufio.NewReader(bytes.NewReader(stream))
		for {
			payload, err := ReadFrame(br)
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrProtocol) {
					t.Fatalf("ReadFrame: %v is neither EOF nor ErrProtocol", err)
				}
				return
			}
			req, err := decodeRequest(payload)
			if err != nil {
				if !errors.Is(err, ErrProtocol) {
					t.Fatalf("decodeRequest: %v is not ErrProtocol", err)
				}
				// A payload-level error keeps the session alive and
				// frame-aligned; keep consuming the stream like the
				// session loop does.
				continue
			}
			// The request decoded: it must survive a re-encode
			// roundtrip, like the one the session's response path and
			// the client's request path perform.
			var buf bytes.Buffer
			if werr := WriteRequest(&buf, req); werr != nil {
				t.Fatalf("re-encode of decoded request failed: %v", werr)
			}
			p2, rerr := ReadFrame(bufio.NewReader(&buf))
			if rerr != nil {
				t.Fatalf("re-read of re-encoded request failed: %v", rerr)
			}
			if _, derr := decodeRequest(p2); derr != nil {
				t.Fatalf("re-decode of re-encoded request failed: %v", derr)
			}
		}
	})
}
