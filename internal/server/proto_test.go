package server

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"tierdb/internal/explain"
	"tierdb/internal/schema"
	"tierdb/internal/value"
)

// sampleRequests covers every opcode with a representative body.
func sampleRequests() []Request {
	return []Request{
		{Op: OpPing},
		{Op: OpCheckpoint},
		{Op: OpStats},
		{Op: OpTables},
		{Op: OpCreateTable, Table: "orders", Fields: []schema.Field{
			{Name: "id", Type: value.Int64},
			{Name: "amount", Type: value.Float64},
			{Name: "note", Type: value.String, Width: 24},
		}},
		{Op: OpInsert, Table: "orders", Row: []value.Value{
			value.NewInt(7), value.NewFloat(3.25), value.NewString("héllo"),
		}},
		{Op: OpDelete, Table: "orders", RowID: 99},
		{Op: OpUpdate, Table: "orders", RowID: 12, Row: []value.Value{
			value.NewInt(8), value.NewFloat(-1), value.NewString(""),
		}},
		{Op: OpBulkLoad, Table: "orders", Rows: [][]value.Value{
			{value.NewInt(1)}, {value.NewInt(2)}, {},
		}},
		{Op: OpSelect, Table: "orders",
			Predicates: []Predicate{
				{Column: "id", Op: PredEq, Value: value.NewInt(7)},
				{Column: "amount", Op: PredBetween, Value: value.NewFloat(0), Hi: value.NewFloat(10)},
			},
			Project: []string{"id", "note"}, Traced: true},
		{Op: OpRows, Table: "orders"},
		{Op: OpAdvise, Table: "orders", Blob: []byte(`{"budget_bytes":1024}`)},
		{Op: OpApplyLayout, Table: "orders", Layout: []bool{true, false, true}},
		{Op: OpAdaptive, Sub: AdaptiveStatus},
		{Op: OpAdaptive, Sub: AdaptiveEnable},
		{Op: OpAdaptive, Sub: AdaptiveDisable},
		{Op: OpExplain, Table: "orders",
			Specs: []explain.PredicateSpec{
				{Column: "region", Op: "eq", Value: "7"},
				{Column: "amount", Op: "between", Value: "100", Hi: "200"},
			},
			Project: []string{"amount"}, Analyze: true},
		{Op: OpExplain, Table: "orders"},
	}
}

// TestRequestRoundtrip encodes every opcode through a frame and back.
func TestRequestRoundtrip(t *testing.T) {
	for _, req := range sampleRequests() {
		var stream bytes.Buffer
		if err := WriteRequest(&stream, req); err != nil {
			t.Fatalf("op %d: write: %v", req.Op, err)
		}
		payload, err := ReadFrame(bufio.NewReader(&stream))
		if err != nil {
			t.Fatalf("op %d: read frame: %v", req.Op, err)
		}
		got, err := decodeRequest(payload)
		if err != nil {
			t.Fatalf("op %d: decode: %v", req.Op, err)
		}
		if !reflect.DeepEqual(normalizeReq(req), normalizeReq(got)) {
			t.Errorf("op %d roundtrip mismatch:\n sent %+v\n got  %+v", req.Op, req, got)
		}
	}
}

// normalizeReq maps nil and empty slices together (the codec does not
// distinguish them).
func normalizeReq(r Request) Request {
	if len(r.Fields) == 0 {
		r.Fields = nil
	}
	if len(r.Row) == 0 {
		r.Row = nil
	}
	if len(r.Rows) == 0 {
		r.Rows = nil
	}
	for i := range r.Rows {
		if len(r.Rows[i]) == 0 {
			r.Rows[i] = nil
		}
	}
	if len(r.Predicates) == 0 {
		r.Predicates = nil
	}
	if len(r.Project) == 0 {
		r.Project = nil
	}
	if len(r.Blob) == 0 {
		r.Blob = nil
	}
	if len(r.Layout) == 0 {
		r.Layout = nil
	}
	if len(r.Specs) == 0 {
		r.Specs = nil
	}
	return r
}

// TestResponseRoundtrip encodes representative responses for every
// answer shape.
func TestResponseRoundtrip(t *testing.T) {
	cases := []struct {
		op   byte
		resp Response
	}{
		{OpPing, Response{}},
		{OpInsert, Response{Status: StatusEngineErr, Msg: "no such table"}},
		{OpSelect, Response{Status: StatusOverloaded, Msg: "overloaded"}},
		{OpSelect, Response{
			IDs:   []uint64{1, 5, 1 << 40},
			Rows:  [][]value.Value{{value.NewInt(3), value.NewString("x")}},
			Trace: "trace text",
		}},
		{OpStats, Response{Blob: []byte(`{"counters":{}}`)}},
		{OpAdvise, Response{Blob: []byte(`{"table":"t"}`)}},
		{OpAdaptive, Response{Blob: []byte(`{"enabled":true}`)}},
		{OpExplain, Response{Blob: []byte(`{"table":"t","mode":"analyze"}`)}},
		{OpExplain, Response{Status: StatusEngineErr, Msg: "no such table"}},
		{OpRows, Response{Count: 123456}},
		{OpTables, Response{Names: []string{"a", "b"}}},
	}
	for i, tc := range cases {
		payload := encodeResponse(nil, tc.op, tc.resp)
		got, err := DecodeResponse(tc.op, payload)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(normalizeResp(tc.resp), normalizeResp(got)) {
			t.Errorf("case %d roundtrip mismatch:\n sent %+v\n got  %+v", i, tc.resp, got)
		}
	}
}

func normalizeResp(r Response) Response {
	if len(r.IDs) == 0 {
		r.IDs = nil
	}
	if len(r.Rows) == 0 {
		r.Rows = nil
	}
	if len(r.Blob) == 0 {
		r.Blob = nil
	}
	if len(r.Names) == 0 {
		r.Names = nil
	}
	return r
}

// TestHostileFrames proves frame-level damage is always ErrProtocol,
// never a panic or a bogus success.
func TestHostileFrames(t *testing.T) {
	valid := appendFrame(nil, encodeRequest(nil, Request{Op: OpRows, Table: "t"}))

	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < len(valid); cut++ {
			_, err := ReadFrame(bufio.NewReader(bytes.NewReader(valid[:cut])))
			if !errors.Is(err, ErrProtocol) {
				t.Fatalf("truncated at %d: err = %v, want ErrProtocol", cut, err)
			}
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		for i := range valid {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), valid...)
				mut[i] ^= 1 << bit
				br := bufio.NewReader(bytes.NewReader(mut))
				payload, err := ReadFrame(br)
				if err != nil {
					continue // rejected at the frame layer: fine
				}
				// A flip the CRC did not catch can only be in the
				// length prefix encoding the same value, so the
				// payload must still decode to the original request.
				if _, derr := decodeRequest(payload); derr != nil && !errors.Is(derr, ErrProtocol) {
					t.Fatalf("byte %d bit %d: decode error %v is not ErrProtocol", i, bit, derr)
				}
			}
		}
	})
	t.Run("oversized", func(t *testing.T) {
		var huge bytes.Buffer
		huge.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // ~1<<34
		_, err := ReadFrame(bufio.NewReader(&huge))
		if !errors.Is(err, ErrProtocol) {
			t.Fatalf("oversized frame: err = %v, want ErrProtocol", err)
		}
	})
	t.Run("empty stream", func(t *testing.T) {
		_, err := ReadFrame(bufio.NewReader(bytes.NewReader(nil)))
		if err != io.EOF {
			t.Fatalf("empty stream: err = %v, want io.EOF", err)
		}
	})
}

// TestHostilePayloads proves CRC-valid but malformed payloads are
// ErrProtocol — truncations, trailing garbage, hostile counts.
func TestHostilePayloads(t *testing.T) {
	for _, req := range sampleRequests() {
		payload := encodeRequest(nil, req)
		for cut := 0; cut < len(payload); cut++ {
			if _, err := decodeRequest(payload[:cut]); err != nil && !errors.Is(err, ErrProtocol) {
				t.Fatalf("op %d truncated payload at %d: %v not ErrProtocol", req.Op, cut, err)
			}
		}
		if _, err := decodeRequest(append(append([]byte(nil), payload...), 0)); !errors.Is(err, ErrProtocol) {
			t.Fatalf("op %d trailing byte accepted", req.Op)
		}
	}
	// A hostile element count must not drive a huge allocation: the
	// count is bounds-checked against the remaining payload.
	hostile := []byte{OpBulkLoad, 1, 't', 0xff, 0xff, 0xff, 0xff, 0x0f}
	if _, err := decodeRequest(hostile); !errors.Is(err, ErrProtocol) {
		t.Fatalf("hostile count: err = %v, want ErrProtocol", err)
	}
	if _, err := decodeRequest(nil); !errors.Is(err, ErrProtocol) {
		t.Fatal("empty payload accepted")
	}
	if _, err := decodeRequest([]byte{250}); !errors.Is(err, ErrProtocol) {
		t.Fatal("unknown opcode accepted")
	}
	// Explain-specific field validation: an unknown predicate-op byte
	// and a non-boolean analyze flag are payload errors, not panics.
	badOp := []byte{OpExplain, 1, 't', 1, 1, 'c', 9, 1, 'v', 0, 0, 0}
	if _, err := decodeRequest(badOp); !errors.Is(err, ErrProtocol) {
		t.Fatalf("explain bad predicate op: err = %v, want ErrProtocol", err)
	}
	good := encodeRequest(nil, Request{Op: OpExplain, Table: "t",
		Specs: []explain.PredicateSpec{{Column: "c", Op: "eq", Value: "1"}}})
	badAnalyze := append(append([]byte(nil), good[:len(good)-1]...), 2)
	if _, err := decodeRequest(badAnalyze); !errors.Is(err, ErrProtocol) {
		t.Fatalf("explain bad analyze flag: err = %v, want ErrProtocol", err)
	}
}

// TestBareResponse covers the unsolicited-frame decoder used for
// session-admission rejects.
func TestBareResponse(t *testing.T) {
	reject := encodeResponse(nil, 0, Response{Status: StatusOverloaded, Msg: "overloaded"})
	resp, err := DecodeBareResponse(reject)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOverloaded || resp.Msg != "overloaded" {
		t.Fatalf("bare response = %+v", resp)
	}
	if _, err := DecodeBareResponse(encodeResponse(nil, OpPing, Response{})); !errors.Is(err, ErrProtocol) {
		t.Fatalf("unsolicited OK accepted: %v", err)
	}
}
