// Package dsm implements the alternative secondary-storage format the
// paper deliberately decides against (Sections I-B and II-A): a
// disk-resident decomposed storage model (DSM), where every evicted
// attribute is stored in its own run of pages. Scanning one attribute
// touches only that attribute's pages (W times less IO than the
// row-oriented SSCG for a W-attribute group), but a full-width tuple
// reconstruction needs one page access per attribute — the
// "disastrous" case the paper's SSCG design avoids. The package exists
// as a first-class comparator for the format ablation in bench_test.go.
package dsm

import (
	"fmt"
	"sync"

	"tierdb/internal/amm"
	"tierdb/internal/schema"
	"tierdb/internal/storage"
	"tierdb/internal/value"
)

// Group is an immutable columnar (DSM) group on secondary storage.
type Group struct {
	fields       []schema.Field
	rows         int
	slotsPerPage []int              // per field
	pages        [][]storage.PageID // per field, page run
	store        storage.Store
	cache        *amm.Cache
	bufs         sync.Pool
}

// Build encodes rows column-by-column into per-field page runs.
func Build(fields []schema.Field, rows [][]value.Value, store storage.Store, cache *amm.Cache) (*Group, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("dsm: no fields")
	}
	g := &Group{
		fields: append([]schema.Field(nil), fields...),
		rows:   len(rows),
		store:  store,
		cache:  cache,
	}
	g.bufs.New = func() any {
		b := make([]byte, storage.PageSize)
		return &b
	}
	g.slotsPerPage = make([]int, len(fields))
	g.pages = make([][]storage.PageID, len(fields))
	page := make([]byte, storage.PageSize)
	for f, fd := range fields {
		slot := fd.SlotWidth()
		if slot > storage.PageSize {
			return nil, fmt.Errorf("dsm: field %q slot width %d exceeds page size", fd.Name, slot)
		}
		per := storage.PageSize / slot
		g.slotsPerPage[f] = per
		inPage := 0
		for i := range page {
			page[i] = 0
		}
		flush := func() error {
			id, err := store.Allocate()
			if err != nil {
				return fmt.Errorf("dsm: allocate page: %w", err)
			}
			if err := store.WritePage(id, page); err != nil {
				return fmt.Errorf("dsm: write page: %w", err)
			}
			g.pages[f] = append(g.pages[f], id)
			for i := range page {
				page[i] = 0
			}
			inPage = 0
			return nil
		}
		for r, row := range rows {
			if len(row) != len(fields) {
				return nil, fmt.Errorf("dsm: row %d has %d values, want %d", r, len(row), len(fields))
			}
			v := row[f]
			if v.Type() != fd.Type {
				return nil, fmt.Errorf("dsm: row %d field %q: type %s, want %s", r, fd.Name, v.Type(), fd.Type)
			}
			if err := value.EncodeFixed(v, page[inPage*slot:(inPage+1)*slot]); err != nil {
				return nil, fmt.Errorf("dsm: row %d field %q: %w", r, fd.Name, err)
			}
			inPage++
			if inPage == per {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
		if inPage > 0 {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// Rows returns the number of rows.
func (g *Group) Rows() int { return g.rows }

// Fields returns the group's fields.
func (g *Group) Fields() []schema.Field {
	return append([]schema.Field(nil), g.fields...)
}

// PageCount returns the total pages across all field runs.
func (g *Group) PageCount() int {
	n := 0
	for _, run := range g.pages {
		n += len(run)
	}
	return n
}

// FieldPageCount returns the pages of one field's run.
func (g *Group) FieldPageCount(field int) int {
	if field < 0 || field >= len(g.pages) {
		return 0
	}
	return len(g.pages[field])
}

// PagesPerReconstruction returns the page accesses a full-width tuple
// reconstruction needs: one per attribute (the DSM weakness).
func (g *Group) PagesPerReconstruction() int { return len(g.fields) }

func (g *Group) readPage(id storage.PageID, fn func(data []byte) error) error {
	if g.cache != nil {
		data, _, err := g.cache.Get(id)
		if err != nil {
			return err
		}
		defer g.cache.Release(id)
		return fn(data)
	}
	bufp := g.bufs.Get().(*[]byte)
	defer g.bufs.Put(bufp)
	if err := g.store.ReadPage(id, *bufp); err != nil {
		return err
	}
	return fn(*bufp)
}

// ReadField reads one cell: a single page access within the field's
// run.
func (g *Group) ReadField(row, field int) (value.Value, error) {
	if row < 0 || row >= g.rows {
		return value.Value{}, fmt.Errorf("dsm: row %d out of range (%d)", row, g.rows)
	}
	if field < 0 || field >= len(g.fields) {
		return value.Value{}, fmt.Errorf("dsm: field %d out of range (%d)", field, len(g.fields))
	}
	fd := g.fields[field]
	per := g.slotsPerPage[field]
	slot := fd.SlotWidth()
	pageIdx := row / per
	off := (row % per) * slot
	var out value.Value
	err := g.readPage(g.pages[field][pageIdx], func(data []byte) error {
		v, err := value.DecodeFixed(fd.Type, data[off:off+slot])
		out = v
		return err
	})
	return out, err
}

// ReadRow reconstructs a full row: one page access per attribute.
func (g *Group) ReadRow(row int) ([]value.Value, error) {
	if row < 0 || row >= g.rows {
		return nil, fmt.Errorf("dsm: row %d out of range (%d)", row, g.rows)
	}
	out := make([]value.Value, len(g.fields))
	for f := range g.fields {
		v, err := g.ReadField(row, f)
		if err != nil {
			return nil, err
		}
		out[f] = v
	}
	return out, nil
}

// Scan evaluates pred over one field, touching only that field's page
// run (the DSM strength).
func (g *Group) Scan(field int, pred func(value.Value) bool, out []uint32, skip func(int) bool) ([]uint32, error) {
	if field < 0 || field >= len(g.fields) {
		return nil, fmt.Errorf("dsm: field %d out of range (%d)", field, len(g.fields))
	}
	fd := g.fields[field]
	per := g.slotsPerPage[field]
	slot := fd.SlotWidth()
	for pageIdx, id := range g.pages[field] {
		first := pageIdx * per
		n := min(per, g.rows-first)
		if n <= 0 {
			break
		}
		err := g.readPage(id, func(data []byte) error {
			for i := 0; i < n; i++ {
				row := first + i
				if skip != nil && skip(row) {
					continue
				}
				v, err := value.DecodeFixed(fd.Type, data[i*slot:(i+1)*slot])
				if err != nil {
					return err
				}
				if pred(v) {
					out = append(out, uint32(row))
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
