package dsm

import (
	"fmt"
	"testing"

	"tierdb/internal/device"
	"tierdb/internal/schema"
	"tierdb/internal/sscg"
	"tierdb/internal/storage"
	"tierdb/internal/value"
)

func makeRows(n, f int) ([]schema.Field, [][]value.Value) {
	fields := make([]schema.Field, f)
	for i := range fields {
		fields[i] = schema.Field{Name: fmt.Sprintf("c%d", i), Type: value.Int64}
	}
	rows := make([][]value.Value, n)
	for r := range rows {
		row := make([]value.Value, f)
		for c := range row {
			row[c] = value.NewInt(int64(r*1000 + c))
		}
		rows[r] = row
	}
	return fields, rows
}

func TestBuildAndReadRoundTrip(t *testing.T) {
	fields, rows := makeRows(1000, 8)
	g, err := Build(fields, rows, storage.NewMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows() != 1000 {
		t.Errorf("Rows = %d", g.Rows())
	}
	for _, r := range []int{0, 511, 512, 999} {
		got, err := g.ReadRow(r)
		if err != nil {
			t.Fatal(err)
		}
		for c := range got {
			if want := int64(r*1000 + c); got[c].Int() != want {
				t.Errorf("row %d field %d = %d, want %d", r, c, got[c].Int(), want)
			}
		}
	}
	v, err := g.ReadField(700, 3)
	if err != nil || v.Int() != 700003 {
		t.Errorf("ReadField = %v, %v", v, err)
	}
	if _, err := g.ReadRow(1000); err == nil {
		t.Error("out-of-range row accepted")
	}
	if _, err := g.ReadField(0, 8); err == nil {
		t.Error("out-of-range field accepted")
	}
}

func TestScanTouchesOnlyFieldRun(t *testing.T) {
	fields, rows := makeRows(10000, 10)
	clock := &storage.Clock{}
	store := storage.NewTimedStore(storage.NewMemStore(), device.XPoint, clock, 1)
	g, err := Build(fields, rows, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	clock.Reset()
	got, err := g.Scan(4, func(v value.Value) bool { return v.Int() == 1234004 }, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1234 {
		t.Errorf("Scan = %v", got)
	}
	// Only field 4's run (10000 / 512 slots per page = 20 pages) read.
	if reads := clock.Reads(); reads != int64(g.FieldPageCount(4)) {
		t.Errorf("scan read %d pages, want %d", reads, g.FieldPageCount(4))
	}
	// Skip masks rows.
	got, err = g.Scan(4, func(v value.Value) bool { return v.Int()%1000 == 4 }, nil,
		func(r int) bool { return r != 7 })
	if err != nil || len(got) != 1 || got[0] != 7 {
		t.Errorf("Scan with skip = %v, %v", got, err)
	}
}

func TestDSMVsSSCGTradeoff(t *testing.T) {
	// The core format trade-off: DSM scans an attribute with ~W times
	// fewer page reads; SSCG reconstructs a tuple with ~W times fewer.
	const width = 10
	fields, rows := makeRows(5000, width)

	dsmClock := &storage.Clock{}
	dsmStore := storage.NewTimedStore(storage.NewMemStore(), device.XPoint, dsmClock, 1)
	dsmGroup, err := Build(fields, rows, dsmStore, nil)
	if err != nil {
		t.Fatal(err)
	}

	rowClock := &storage.Clock{}
	rowStore := storage.NewTimedStore(storage.NewMemStore(), device.XPoint, rowClock, 1)
	rowGroup, err := sscg.Build(fields, rows, rowStore, nil)
	if err != nil {
		t.Fatal(err)
	}

	pred := func(v value.Value) bool { return v.Int()%1000 == 3 }

	dsmClock.Reset()
	if _, err := dsmGroup.Scan(3, pred, nil, nil); err != nil {
		t.Fatal(err)
	}
	dsmScanReads := dsmClock.Reads()
	rowClock.Reset()
	if _, err := rowGroup.Scan(3, pred, nil, nil); err != nil {
		t.Fatal(err)
	}
	rowScanReads := rowClock.Reads()
	if dsmScanReads*5 > rowScanReads {
		t.Errorf("DSM scan (%d reads) should be ~%dx cheaper than SSCG scan (%d reads)",
			dsmScanReads, width, rowScanReads)
	}

	dsmClock.Reset()
	if _, err := dsmGroup.ReadRow(1234); err != nil {
		t.Fatal(err)
	}
	dsmRecReads := dsmClock.Reads()
	rowClock.Reset()
	if _, err := rowGroup.ReadRow(1234); err != nil {
		t.Fatal(err)
	}
	rowRecReads := rowClock.Reads()
	if rowRecReads != 1 || dsmRecReads != width {
		t.Errorf("reconstruction reads: SSCG %d (want 1), DSM %d (want %d)",
			rowRecReads, dsmRecReads, width)
	}
	if g, w := dsmGroup.PagesPerReconstruction(), width; g != w {
		t.Errorf("PagesPerReconstruction = %d, want %d", g, w)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(nil, nil, storage.NewMemStore(), nil); err == nil {
		t.Error("empty fields accepted")
	}
	fields, rows := makeRows(3, 2)
	rows[1] = rows[1][:1]
	if _, err := Build(fields, rows, storage.NewMemStore(), nil); err == nil {
		t.Error("short row accepted")
	}
	_, rows = makeRows(3, 2)
	rows[0][1] = value.NewString("nope")
	if _, err := Build(fields, rows, storage.NewMemStore(), nil); err == nil {
		t.Error("type mismatch accepted")
	}
	wide := []schema.Field{{Name: "s", Type: value.String, Width: 5000}}
	if _, err := Build(wide, [][]value.Value{{value.NewString("x")}}, storage.NewMemStore(), nil); err == nil {
		t.Error("slot wider than page accepted")
	}
}

func TestMixedTypes(t *testing.T) {
	fields := []schema.Field{
		{Name: "id", Type: value.Int64},
		{Name: "price", Type: value.Float64},
		{Name: "tag", Type: value.String, Width: 10},
	}
	rows := [][]value.Value{
		{value.NewInt(1), value.NewFloat(2.5), value.NewString("alpha")},
		{value.NewInt(2), value.NewFloat(-1.25), value.NewString("beta")},
	}
	g, err := Build(fields, rows, storage.NewMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.ReadRow(1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Int() != 2 || got[1].Float() != -1.25 || got[2].Str() != "beta" {
		t.Errorf("mixed row = %v", got)
	}
	if len(g.Fields()) != 3 || g.PageCount() != 3 {
		t.Errorf("Fields/PageCount = %d/%d", len(g.Fields()), g.PageCount())
	}
	if g.FieldPageCount(99) != 0 {
		t.Error("out-of-range FieldPageCount should be 0")
	}
}
