// Package obsrv is tierdb's embedded observability server: a plain
// net/http handler that surfaces engine metrics (Prometheus text
// exposition and raw JSON), pprof profiles, the recent/slow query
// trace rings, the captured workload (the cost model's b_j, q_j, s_i
// inputs), and a live layout advisor that re-runs the column-selection
// model against the observed workload.
//
// The package deliberately does not import the root tierdb package
// (which imports the packages this one reports on); the root wires a
// Server up with closures and the typed report structs defined here.
package obsrv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"tierdb/internal/explain"
	"tierdb/internal/metrics"
	"tierdb/internal/trace"
)

// Server holds the data sources the HTTP handlers render. Every field
// is optional: handlers whose source is nil answer 404, so a partially
// wired server (e.g. in tests) still serves the rest.
type Server struct {
	// Snapshot returns the current metrics snapshot; feeds /metrics
	// and /stats.json.
	Snapshot func() metrics.Snapshot
	// Recent and Slow are the query trace rings behind /traces.
	Recent *metrics.TraceRing
	Slow   *metrics.TraceRing
	// SlowThreshold is reported alongside /traces?slow=1 output.
	SlowThreshold time.Duration
	// Workload reports the captured per-table workload for /workload.
	Workload func() []TableWorkload
	// Advise runs the layout advisor for one table (/layout/advisor).
	Advise func(table string, q AdvisorQuery) (*AdvisorReport, error)
	// Tables lists table names, used when /layout/advisor is asked to
	// advise everything.
	Tables func() []string
	// Adaptive reports the adaptive placement scheduler's state and last
	// per-table decisions (/layout/adaptive).
	Adaptive func() *AdaptiveReport
	// Spans is the distributed-trace span ring behind /trace/{id}; it
	// also attaches span trees to /traces entries that carry a trace ID.
	Spans *trace.Ring
	// Explain runs EXPLAIN (analyze absent/0) or EXPLAIN ANALYZE
	// (analyze=1) for one table (/explain).
	Explain func(table string, specs []explain.PredicateSpec, project []string, analyze bool) (*explain.Plan, error)
	// Ready reports readiness for /readyz: WAL recovery finished and
	// the instance is accepting work. Nil answers 404 (not wired).
	Ready func() bool
	// Build reports build metadata for the tierdb_build_info series on
	// /metrics. Nil omits the series.
	Build func() BuildInfo
	// Uptime reports process uptime for tierdb_uptime_seconds on
	// /metrics. Nil omits the series.
	Uptime func() time.Duration
}

// BuildInfo is the metadata behind the tierdb_build_info gauge: the
// series always has value 1, the interesting bits ride in labels.
type BuildInfo struct {
	// Version is the main module's version ("(devel)" for plain builds).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS revision, when stamped into the build.
	Revision string `json:"revision,omitempty"`
}

// AdvisorQuery carries the /layout/advisor knobs.
type AdvisorQuery struct {
	// BudgetBytes caps DRAM for the recommended placement; 0 means
	// "use the table's current DRAM footprint" so the advisor answers
	// "could these same bytes be spent better".
	BudgetBytes int64
	// RelativeBudget, when >0, overrides BudgetBytes as a fraction of
	// the table's all-in-DRAM footprint (the paper's relative MMB).
	RelativeBudget float64
	// MinSamples is how many observed-selectivity samples a column
	// needs before the advisor trusts its EWMA over the static
	// estimate. Zero selects the default.
	MinSamples int
	// Beta, when > 0, makes the advisor solve the reallocation-aware
	// problem (paper formulation (6)-(7)): moving a byte between tiers
	// costs Beta, with the table's current layout as y. Zero keeps the
	// classic placement-from-scratch advice.
	Beta float64
}

// AdaptiveReport is the /layout/adaptive answer: the daemon's
// configuration, lifetime totals and the last decision per table.
type AdaptiveReport struct {
	Enabled         bool    `json:"enabled"`
	IntervalNs      int64   `json:"interval_ns"`
	Alpha           float64 `json:"alpha,omitempty"`
	Beta            float64 `json:"beta,omitempty"`
	BudgetBytes     int64   `json:"budget_bytes,omitempty"`
	MinGain         float64 `json:"min_gain"`
	MaxMoveFraction float64 `json:"max_move_fraction"`
	CooldownCycles  int     `json:"cooldown_cycles"`
	Cycles          uint64  `json:"cycles"`
	Applies         uint64  `json:"applies"`
	Skips           uint64  `json:"skips"`
	Errors          uint64  `json:"errors"`
	MovedBytes      int64   `json:"moved_bytes"`
	// Tables holds the most recent decision per table, sorted by name.
	Tables []AdaptiveDecision `json:"tables,omitempty"`
}

// AdaptiveDecision records what the adaptive scheduler decided for one
// table in one cycle, and why.
type AdaptiveDecision struct {
	Table string `json:"table"`
	Cycle uint64 `json:"cycle"`
	// Action is "applied", "skipped" or "error"; Reason says why.
	Action string `json:"action"`
	Reason string `json:"reason"`
	// WindowQueries is the total query frequency of the closed window
	// the decision was based on.
	WindowQueries float64 `json:"window_queries"`
	// CurrentCost and RecommendedCost are the modeled objectives of
	// the present and recommended placements under that window: the
	// scan cost F(x), plus alpha*M(x) when the daemon runs the penalty
	// form (DRAM rent is part of what it minimizes there).
	CurrentCost     float64 `json:"current_cost,omitempty"`
	RecommendedCost float64 `json:"recommended_cost,omitempty"`
	// Improvement is (current-recommended)/current.
	Improvement float64 `json:"improvement,omitempty"`
	// MovedBytes is how many column bytes the recommendation relocates.
	MovedBytes  int64  `json:"moved_bytes,omitempty"`
	SolveNs     int64  `json:"solve_ns,omitempty"`
	Current     []bool `json:"current,omitempty"`
	Recommended []bool `json:"recommended,omitempty"`
	// CooldownLeft is how many cycles of flip-back cooldown remain.
	CooldownLeft int `json:"cooldown_left,omitempty"`
}

// TableWorkload is the /workload report for one table: the captured
// inputs of the paper's cost model.
type TableWorkload struct {
	Table          string           `json:"table"`
	Rows           int              `json:"rows"`
	MemoryBytes    int64            `json:"memory_bytes"`
	SecondaryBytes int64            `json:"secondary_bytes"`
	Columns        []WorkloadColumn `json:"columns"`
	// Plans is the all-time plan cache: each distinct filtered column
	// set (b_j) with its observed frequency (q_j).
	Plans []PlanInfo `json:"plans,omitempty"`
	// CurrentWindow holds the plans of the open history window.
	CurrentWindow []PlanInfo `json:"current_window,omitempty"`
	ClosedWindows int        `json:"closed_windows"`
}

// WorkloadColumn describes one column's model inputs.
type WorkloadColumn struct {
	Index     int    `json:"index"`
	Name      string `json:"name"`
	SizeBytes int64  `json:"size_bytes"`
	InDRAM    bool   `json:"in_dram"`
	// AccessCount is the plan-weighted access frequency g_i.
	AccessCount float64 `json:"access_count"`
	// EstimatedSelectivity is the static estimate (1/distinct).
	EstimatedSelectivity float64 `json:"estimated_selectivity"`
	// ObservedSelectivity is the runtime EWMA of qualifying fractions;
	// zero until ObservedSamples > 0.
	ObservedSelectivity float64 `json:"observed_selectivity,omitempty"`
	ObservedSamples     int64   `json:"observed_samples,omitempty"`
}

// PlanInfo is one access plan: a filtered column set and how often it
// was seen.
type PlanInfo struct {
	Columns []int    `json:"columns"`
	Names   []string `json:"names,omitempty"`
	Count   float64  `json:"count"`
}

// Placement is one evaluated data placement: the DRAM bitmap plus its
// modeled memory footprint and scan cost under the captured workload.
type Placement struct {
	InDRAM      []bool  `json:"in_dram"`
	MemoryBytes int64   `json:"memory_bytes"`
	ModeledCost float64 `json:"modeled_cost"`
}

// AdvisorColumn explains the advisor's view of one column.
type AdvisorColumn struct {
	Index     int    `json:"index"`
	Name      string `json:"name"`
	SizeBytes int64  `json:"size_bytes"`
	// Selectivity is the value the model was fed; SelectivitySource
	// says whether it came from the observed EWMA or the static
	// estimate.
	Selectivity       float64 `json:"selectivity"`
	SelectivitySource string  `json:"selectivity_source"`
	ObservedSamples   int64   `json:"observed_samples,omitempty"`
	AccessCount       float64 `json:"access_count"`
	InDRAMNow         bool    `json:"in_dram_now"`
	InDRAMRecommended bool    `json:"in_dram_recommended"`
}

// AdvisorReport is the /layout/advisor answer for one table.
type AdvisorReport struct {
	Table           string          `json:"table"`
	Method          string          `json:"method"`
	BudgetBytes     int64           `json:"budget_bytes"`
	RelativeBudget  float64         `json:"relative_budget,omitempty"`
	Beta            float64         `json:"beta,omitempty"`
	MinSamples      int             `json:"min_samples"`
	ObservedColumns int             `json:"observed_columns"`
	Queries         float64         `json:"queries"`
	Current         Placement       `json:"current"`
	Recommended     Placement       `json:"recommended"`
	CostDelta       float64         `json:"cost_delta"`
	Improvement     float64         `json:"improvement"`
	Changed         bool            `json:"changed"`
	Columns         []AdvisorColumn `json:"columns"`
}

// Handler returns the observability mux. pprof is wired explicitly so
// nothing leaks onto http.DefaultServeMux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.serveIndex)
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/stats.json", s.serveStatsJSON)
	mux.HandleFunc("/traces", s.serveTraces)
	mux.HandleFunc("/trace/", s.serveTrace)
	mux.HandleFunc("/healthz", s.serveHealthz)
	mux.HandleFunc("/readyz", s.serveReadyz)
	mux.HandleFunc("/workload", s.serveWorkload)
	mux.HandleFunc("/layout/advisor", s.serveAdvisor)
	mux.HandleFunc("/layout/adaptive", s.serveAdaptive)
	mux.HandleFunc("/explain", s.serveExplain)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `tierdb observability
  /metrics            Prometheus text exposition
  /stats.json         raw metrics snapshot (JSON)
  /traces             recent query traces (?slow=1 ?n=20 ?format=text)
  /trace/{id}         one distributed trace as a span tree (?format=text)
  /healthz            liveness probe (always ok while serving)
  /readyz             readiness probe (recovery finished, accepting work)
  /workload           captured workload: plans, access counts, selectivities
  /layout/advisor     layout recommendation (?table= ?budget= ?w= ?min_samples= ?beta=)
  /layout/adaptive    adaptive placement scheduler: last decisions + reasons
  /explain            EXPLAIN/ANALYZE one query (?table= ?q=col=v,col=lo..hi ?project= ?analyze=1 ?format=text)
  /debug/pprof/       runtime profiles
`)
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if s.Snapshot == nil {
		http.Error(w, "no metrics source", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(RenderPrometheus(s.Snapshot()))
	if s.Build != nil {
		w.Write(RenderBuildInfo(s.Build()))
	}
	if s.Uptime != nil {
		w.Write(RenderUptime(s.Uptime()))
	}
}

func (s *Server) serveStatsJSON(w http.ResponseWriter, r *http.Request) {
	if s.Snapshot == nil {
		http.Error(w, "no metrics source", http.StatusNotFound)
		return
	}
	writeJSON(w, s.Snapshot())
}

// tracesReply is the JSON shape of /traces.
type tracesReply struct {
	Ring            string       `json:"ring"`
	Capacity        int          `json:"capacity"`
	Added           uint64       `json:"added"`
	SlowThresholdNs int64        `json:"slow_threshold_ns,omitempty"`
	Entries         []traceEntry `json:"entries"`
}

// traceEntry is one /traces entry: the captured query trace plus, when
// the query ran under a distributed trace whose spans are still in the
// ring, the whole span tree with the slowest path identified.
type traceEntry struct {
	*metrics.TraceEntry
	// Spans is the distributed trace's span tree (all roots).
	Spans []*trace.Node `json:"spans,omitempty"`
	// SlowestPath lists the span IDs on the slowest root-to-leaf chain
	// of the first root — the operations that dominated latency.
	SlowestPath []trace.SpanID `json:"slowest_path,omitempty"`
}

// attachSpans resolves an entry's trace ID against the span ring.
func (s *Server) attachSpans(e *metrics.TraceEntry) traceEntry {
	out := traceEntry{TraceEntry: e}
	if s.Spans == nil || e.TraceID == "" {
		return out
	}
	id, err := trace.ParseTraceID(e.TraceID)
	if err != nil {
		return out
	}
	spans := s.Spans.ByTrace(id)
	if len(spans) == 0 {
		return out
	}
	out.Spans = trace.BuildTree(spans)
	for id := range trace.SlowestPath(out.Spans[0]) {
		out.SlowestPath = append(out.SlowestPath, id)
	}
	sort.Slice(out.SlowestPath, func(i, j int) bool { return out.SlowestPath[i] < out.SlowestPath[j] })
	return out
}

func (s *Server) serveTraces(w http.ResponseWriter, r *http.Request) {
	ring, name := s.Recent, "recent"
	if r.URL.Query().Get("slow") == "1" {
		ring, name = s.Slow, "slow"
	}
	if ring == nil {
		http.Error(w, "trace capture not enabled", http.StatusNotFound)
		return
	}
	raw := ring.Snapshot()
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			// Zero, negative and overflowing counts are caller bugs;
			// refuse them instead of silently clamping to nothing.
			http.Error(w, "bad n (want a positive count)", http.StatusBadRequest)
			return
		}
		if n < len(raw) {
			raw = raw[:n]
		}
	}
	entries := make([]traceEntry, 0, len(raw))
	for _, e := range raw {
		entries = append(entries, s.attachSpans(e))
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%s traces: %d held (capacity %d, %d captured)\n",
			name, len(entries), ring.Cap(), ring.Added())
		for _, e := range entries {
			fmt.Fprintf(w, "\n#%d %s wall=%s", e.Seq,
				time.Unix(0, e.UnixNano).UTC().Format(time.RFC3339Nano),
				time.Duration(e.WallNs))
			if e.TraceID != "" {
				fmt.Fprintf(w, " trace=%s", e.TraceID)
			}
			if e.Err != "" {
				fmt.Fprintf(w, " err=%q", e.Err)
			}
			fmt.Fprintln(w)
			if e.Trace != nil {
				fmt.Fprintln(w, e.Trace.String())
			}
			if len(e.Spans) > 0 {
				fmt.Fprint(w, trace.RenderText(e.Spans, trace.SlowestPath(e.Spans[0])))
			}
		}
		return
	}
	writeJSON(w, tracesReply{
		Ring:            name,
		Capacity:        ring.Cap(),
		Added:           ring.Added(),
		SlowThresholdNs: s.SlowThreshold.Nanoseconds(),
		Entries:         entries,
	})
}

func (s *Server) serveWorkload(w http.ResponseWriter, r *http.Request) {
	if s.Workload == nil {
		http.Error(w, "no workload source", http.StatusNotFound)
		return
	}
	tables := s.Workload()
	sort.Slice(tables, func(i, j int) bool { return tables[i].Table < tables[j].Table })
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, t := range tables {
			fmt.Fprintf(w, "table %s: %d rows, %d bytes DRAM, %d bytes secondary, %d closed windows\n",
				t.Table, t.Rows, t.MemoryBytes, t.SecondaryBytes, t.ClosedWindows)
			for _, c := range t.Columns {
				fmt.Fprintf(w, "  col %2d %-12s %8dB g=%-8.6g s_est=%-8.6g", c.Index, c.Name, c.SizeBytes, c.AccessCount, c.EstimatedSelectivity)
				if c.ObservedSamples > 0 {
					fmt.Fprintf(w, " s_obs=%-8.6g (%d samples)", c.ObservedSelectivity, c.ObservedSamples)
				}
				if c.InDRAM {
					fmt.Fprint(w, " [DRAM]")
				}
				fmt.Fprintln(w)
			}
			for _, p := range t.Plans {
				fmt.Fprintf(w, "  plan b=%v q=%g\n", p.Columns, p.Count)
			}
		}
		return
	}
	writeJSON(w, struct {
		Tables []TableWorkload `json:"tables"`
	}{tables})
}

func (s *Server) serveAdvisor(w http.ResponseWriter, r *http.Request) {
	if s.Advise == nil {
		http.Error(w, "no advisor source", http.StatusNotFound)
		return
	}
	var q AdvisorQuery
	qs := r.URL.Query()
	if v := qs.Get("budget"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, "bad budget", http.StatusBadRequest)
			return
		}
		q.BudgetBytes = n
	}
	if v := qs.Get("w"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 || f > 1 {
			http.Error(w, "bad w (want 0 < w <= 1)", http.StatusBadRequest)
			return
		}
		q.RelativeBudget = f
	}
	if v := qs.Get("min_samples"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad min_samples", http.StatusBadRequest)
			return
		}
		q.MinSamples = n
	}
	if v := qs.Get("beta"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			http.Error(w, "bad beta (want beta >= 0)", http.StatusBadRequest)
			return
		}
		q.Beta = f
	}
	names := []string{}
	if t := qs.Get("table"); t != "" {
		names = append(names, t)
	} else if s.Tables != nil {
		names = s.Tables()
		sort.Strings(names)
	}
	reports := make([]*AdvisorReport, 0, len(names))
	for _, name := range names {
		rep, err := s.Advise(name, q)
		if err != nil {
			status := http.StatusBadRequest
			if len(names) == 1 {
				http.Error(w, err.Error(), status)
				return
			}
			continue // skip tables that cannot be advised in the all-tables sweep
		}
		reports = append(reports, rep)
	}
	writeJSON(w, struct {
		Reports []*AdvisorReport `json:"reports"`
	}{reports})
}

func (s *Server) serveAdaptive(w http.ResponseWriter, r *http.Request) {
	if s.Adaptive == nil {
		http.Error(w, "no adaptive scheduler", http.StatusNotFound)
		return
	}
	writeJSON(w, s.Adaptive())
}

// serveExplain answers /explain?table=&q=col=v,col=lo..hi&project=a,b
// with an explain.Plan: plan-only by default, executed-and-annotated
// with analyze=1. format=text renders the tierctl tree instead of JSON.
func (s *Server) serveExplain(w http.ResponseWriter, r *http.Request) {
	if s.Explain == nil {
		http.Error(w, "no explain source", http.StatusNotFound)
		return
	}
	qs := r.URL.Query()
	table := qs.Get("table")
	if table == "" {
		http.Error(w, "missing table", http.StatusBadRequest)
		return
	}
	specs, err := explain.ParseQuerySpec(qs.Get("q"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var project []string
	if v := qs.Get("project"); v != "" {
		project = strings.Split(v, ",")
	}
	analyze := false
	switch qs.Get("analyze") {
	case "", "0":
	case "1":
		analyze = true
	default:
		http.Error(w, "bad analyze (want 0 or 1)", http.StatusBadRequest)
		return
	}
	plan, err := s.Explain(table, specs, project, analyze)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if qs.Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, explain.RenderText(plan))
		return
	}
	writeJSON(w, plan)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
