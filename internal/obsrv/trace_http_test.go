package obsrv

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tierdb/internal/trace"
)

// tracedServer is testServer plus a span ring holding one two-span
// trace, and health/build sources.
func tracedServer(t *testing.T) (*Server, trace.TraceID) {
	t.Helper()
	tr := trace.New(trace.Options{SampleRate: 1, Seed: 7})
	root := tr.Start("client.send")
	child := root.Child("server.request")
	child.End()
	root.End()

	s := testServer()
	s.Spans = tr.Ring()
	ready := true
	s.Ready = func() bool { return ready }
	s.Build = func() BuildInfo {
		return BuildInfo{Version: "v1.2.3", GoVersion: "go1.22", Revision: "abc123"}
	}
	s.Uptime = func() time.Duration { return 90 * time.Second }
	return s, root.Trace
}

func TestServeTraceByID(t *testing.T) {
	s, id := tracedServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/trace/"+id.String())
	if code != 200 {
		t.Fatalf("/trace/%s: status %d: %s", id, code, body)
	}
	var reply struct {
		TraceID string        `json:"trace_id"`
		Spans   []*trace.Node `json:"spans"`
	}
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, body)
	}
	if reply.TraceID != id.String() {
		t.Errorf("trace_id %q != %q", reply.TraceID, id)
	}
	if len(reply.Spans) != 1 || reply.Spans[0].Span.Name != "client.send" ||
		len(reply.Spans[0].Children) != 1 || reply.Spans[0].Children[0].Span.Name != "server.request" {
		t.Errorf("tree shape wrong: %s", body)
	}

	code, body = get(t, ts, "/trace/"+id.String()+"?format=text")
	if code != 200 {
		t.Fatalf("text format: status %d", code)
	}
	for _, want := range []string{"trace " + id.String(), "client.send", "server.request"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("text rendering missing %q:\n%s", want, body)
		}
	}
}

func TestServeTraceErrors(t *testing.T) {
	s, _ := tracedServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for path, want := range map[string]int{
		"/trace/":                 400, // no id
		"/trace/notahexid":        400,
		"/trace/00000000deadbeef": 404, // parses, never sampled
		"/trace/a/b":              400, // path junk
	} {
		if code, _ := get(t, ts, path); code != want {
			t.Errorf("GET %s: status %d, want %d", path, code, want)
		}
	}

	// Without a span ring the endpoint is absent-by-config: 404.
	bare := testServer()
	ts2 := httptest.NewServer(bare.Handler())
	defer ts2.Close()
	if code, _ := get(t, ts2, "/trace/00000000deadbeef"); code != 404 {
		t.Errorf("nil ring: status %d, want 404", code)
	}
}

func TestServeHealthAndReadiness(t *testing.T) {
	ready := false
	s := testServer()
	s.Ready = func() bool { return ready }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/healthz")
	if code != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("/healthz: %d %q", code, body)
	}
	if code, _ := get(t, ts, "/readyz"); code != 503 {
		t.Errorf("/readyz while not ready: %d, want 503", code)
	}
	ready = true
	code, body = get(t, ts, "/readyz")
	if code != 200 || strings.TrimSpace(string(body)) != "ready" {
		t.Errorf("/readyz when ready: %d %q", code, body)
	}

	// No readiness source wired: the probe is absent, not lying.
	bare := testServer()
	ts2 := httptest.NewServer(bare.Handler())
	defer ts2.Close()
	if code, _ := get(t, ts2, "/readyz"); code != 404 {
		t.Errorf("/readyz with nil source: %d, want 404", code)
	}
}

func TestMetricsIncludeBuildInfoAndUptime(t *testing.T) {
	s, _ := tracedServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	if err := ValidateExposition(body); err != nil {
		t.Fatalf("/metrics with build info invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		`tierdb_build_info{version="v1.2.3",goversion="go1.22",revision="abc123"} 1`,
		"tierdb_uptime_seconds 90",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestBuildInfoEscaping proves hostile metadata cannot corrupt the
// exposition format.
func TestBuildInfoEscaping(t *testing.T) {
	out := RenderBuildInfo(BuildInfo{Version: "v1\n\"x\\y", GoVersion: "go1.22"})
	if err := ValidateExposition(out); err != nil {
		t.Fatalf("escaped build info invalid: %v\n%s", err, out)
	}
}
