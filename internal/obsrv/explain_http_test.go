package obsrv

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tierdb/internal/explain"
	"tierdb/internal/trace"
)

func TestServeExplain(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	code, body := get(t, ts, "/explain?table=orders&q=region=7,amount=100..200&project=amount&analyze=1")
	if code != http.StatusOK {
		t.Fatalf("/explain: status %d: %s", code, body)
	}
	var plan explain.Plan
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatalf("/explain: %v", err)
	}
	if plan.Table != "orders" || plan.Mode != explain.ModeAnalyze || len(plan.Nodes) != 2 {
		t.Errorf("/explain plan = %+v", plan)
	}

	// Default is plan-only.
	code, body = get(t, ts, "/explain?table=orders&q=region=7")
	if code != http.StatusOK {
		t.Fatalf("/explain plan-only: status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.Mode != explain.ModeExplain {
		t.Errorf("default mode = %s, want explain", plan.Mode)
	}

	code, body = get(t, ts, "/explain?table=orders&q=region=7&format=text")
	if code != http.StatusOK || !strings.Contains(string(body), "EXPLAIN · table orders") {
		t.Errorf("/explain?format=text: status %d body %q", code, body)
	}
}

func TestServeExplainRejectsBadInput(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()
	for _, path := range []string{
		"/explain",                          // missing table
		"/explain?table=orders&q=region",    // malformed predicate
		"/explain?table=orders&q=a=1..",     // malformed range
		"/explain?table=orders&analyze=yes", // bad analyze flag
		"/explain?table=nope",               // engine error
	} {
		if code, body := get(t, ts, path); code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d (%s), want 400", path, code, body)
		}
	}
	bare := httptest.NewServer((&Server{}).Handler())
	defer bare.Close()
	if code, _ := get(t, bare, "/explain?table=orders"); code != http.StatusNotFound {
		t.Errorf("nil Explain closure: status %d, want 404", code)
	}
}

// Non-positive and overflowing trace parameters are rejected with 400
// instead of being silently clamped.
func TestTraceParamValidation(t *testing.T) {
	srv := testServer()
	srv.Spans = trace.NewRing(16)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{
		"/traces?n=0",
		"/traces?n=-1",
		"/traces?n=99999999999999999999", // overflows int
		"/traces?n=bogus",
		"/trace/0",                 // zero trace id
		"/trace/zz",                // not hex
		"/trace/fffffffffffffffff", // 17 hex digits overflows uint64
		"/trace/",                  // empty id
	} {
		if code, body := get(t, ts, path); code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d (%s), want 400", path, code, body)
		}
	}
	// Positive counts still work.
	if code, _ := get(t, ts, "/traces?n=1"); code != http.StatusOK {
		t.Errorf("GET /traces?n=1: status %d, want 200", code)
	}
}
