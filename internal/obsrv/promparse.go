// A strict, dependency-free parser for the Prometheus text exposition
// format, used by the renderer's tests and fuzz target. It checks the
// lexical rules (metric-name and label-name charsets, label-value
// escaping, float-parseable sample values) plus the structural rules
// for histograms: strictly ascending "le" bounds, non-decreasing
// cumulative bucket counts, a terminal +Inf bucket whose value equals
// the family's _count series.
package obsrv

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

type promFamily struct {
	typ     string
	buckets map[float64]float64 // le -> cumulative count (for histograms)
	count   float64
	hasCnt  bool
}

// ValidateExposition parses data as Prometheus text exposition format
// and returns the first violation found, or nil if the input is valid.
func ValidateExposition(data []byte) error {
	families := map[string]*promFamily{}
	family := func(name string) *promFamily {
		f, ok := families[name]
		if !ok {
			f = &promFamily{buckets: map[float64]float64{}}
			families[name] = f
		}
		return f
	}
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				continue // free-form comment
			}
			switch fields[1] {
			case "HELP":
				if !validMetricName(fields[2]) {
					return fmt.Errorf("line %d: HELP for invalid metric name %q", lineNo, fields[2])
				}
			case "TYPE":
				if !validMetricName(fields[2]) {
					return fmt.Errorf("line %d: TYPE for invalid metric name %q", lineNo, fields[2])
				}
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE line without a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				f := family(fields[2])
				if f.typ != "" {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, fields[2])
				}
				f.typ = fields[3]
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if base, ok := strings.CutSuffix(name, "_bucket"); ok && family(base).typ == "histogram" {
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: histogram bucket %q without le label", lineNo, name)
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("line %d: unparseable le=%q: %v", lineNo, le, err)
			}
			f := family(base)
			if _, dup := f.buckets[bound]; dup {
				return fmt.Errorf("line %d: duplicate bucket le=%q for %q", lineNo, le, base)
			}
			f.buckets[bound] = value
			continue
		}
		if base, ok := strings.CutSuffix(name, "_count"); ok && family(base).typ == "histogram" {
			f := family(base)
			f.count, f.hasCnt = value, true
		}
	}
	for name, f := range families {
		if f.typ != "histogram" || len(f.buckets) == 0 {
			continue
		}
		bounds := make([]float64, 0, len(f.buckets))
		for le := range f.buckets {
			bounds = append(bounds, le)
		}
		sort.Float64s(bounds)
		prev := math.Inf(-1)
		for _, le := range bounds {
			if c := f.buckets[le]; c < prev {
				return fmt.Errorf("histogram %q: bucket le=%g count %g below preceding %g (not cumulative)", name, le, c, prev)
			} else {
				prev = c
			}
		}
		inf, ok := f.buckets[math.Inf(1)]
		if !ok {
			return fmt.Errorf("histogram %q: missing +Inf bucket", name)
		}
		if f.hasCnt && inf != f.count {
			return fmt.Errorf("histogram %q: +Inf bucket %g != _count %g", name, inf, f.count)
		}
	}
	return nil
}

// parseSample splits "name{label="v",...} value [timestamp]".
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' {
		i++
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	labels = map[string]string{}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++ // skip escaped char
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set")
		}
		if err := parseLabels(rest[1:end], labels); err != nil {
			return "", nil, 0, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("expected value [timestamp], got %q", rest)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("unparseable timestamp %q: %v", fields[1], err)
		}
	}
	return name, labels, value, nil
}

func parseLabels(s string, out map[string]string) error {
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label without '=' in %q", s)
		}
		lname := s[:eq]
		if !validLabelName(lname) {
			return fmt.Errorf("invalid label name %q", lname)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return fmt.Errorf("label value for %q not quoted", lname)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return fmt.Errorf("dangling escape in label value")
				}
				i++
				switch s[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("invalid escape \\%c in label value", s[i])
				}
				continue
			}
			if c == '"' {
				closed = true
				s = s[i+1:]
				break
			}
			if c == '\n' {
				return fmt.Errorf("raw newline in label value")
			}
			val.WriteByte(c)
		}
		if !closed {
			return fmt.Errorf("unterminated label value for %q", lname)
		}
		out[lname] = val.String()
		s = strings.TrimPrefix(s, ",")
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
