// Prometheus text exposition (version 0.0.4) rendered from a
// metrics.Snapshot. The mapping is mechanical: every instrument name
// is sanitized (dots become underscores) and prefixed with "tierdb_";
// counters gain the conventional "_total" suffix; gauges emit their
// value plus a "_max" high-watermark series; histograms emit the full
// cumulative "le" bucket series with "_sum" and "_count". Output is
// deterministic (names sorted) so it can be golden-tested.
package obsrv

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"

	"tierdb/internal/metrics"
)

// RenderPrometheus renders the snapshot in Prometheus text exposition
// format.
func RenderPrometheus(s metrics.Snapshot) []byte {
	var b bytes.Buffer
	for _, name := range sortedKeys(s.Counters) {
		m := promName(name) + "_total"
		fmt.Fprintf(&b, "# HELP %s tierdb counter %s\n", m, escapeHelp(name))
		fmt.Fprintf(&b, "# TYPE %s counter\n", m)
		fmt.Fprintf(&b, "%s %d\n", m, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		g := s.Gauges[name]
		m := promName(name)
		fmt.Fprintf(&b, "# HELP %s tierdb gauge %s\n", m, escapeHelp(name))
		fmt.Fprintf(&b, "# TYPE %s gauge\n", m)
		fmt.Fprintf(&b, "%s %d\n", m, g.Value)
		fmt.Fprintf(&b, "# HELP %s_max tierdb gauge %s high-watermark\n", m, escapeHelp(name))
		fmt.Fprintf(&b, "# TYPE %s_max gauge\n", m)
		fmt.Fprintf(&b, "%s_max %d\n", m, g.Max)
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		m := promName(name)
		fmt.Fprintf(&b, "# HELP %s tierdb histogram %s\n", m, escapeHelp(name))
		fmt.Fprintf(&b, "# TYPE %s histogram\n", m)
		var cum int64
		for _, bk := range h.Buckets {
			if bk.Le < 0 {
				continue // the overflow bucket becomes +Inf below
			}
			cum += bk.Count
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", m, bk.Le, cum)
		}
		// A snapshot taken mid-observation can have bucket sums briefly
		// ahead of Count (buckets are bumped before the total); clamping
		// keeps the cumulative series monotone for scrapers.
		inf := h.Count
		if cum > inf {
			inf = cum
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m, inf)
		fmt.Fprintf(&b, "%s_sum %d\n", m, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", m, inf)
	}
	return b.Bytes()
}

// RenderBuildInfo renders the tierdb_build_info series: a constant 1
// whose labels carry the build metadata, the conventional Prometheus
// shape for joining version info onto other series.
func RenderBuildInfo(bi BuildInfo) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "# HELP tierdb_build_info Build metadata; value is always 1.\n")
	fmt.Fprintf(&b, "# TYPE tierdb_build_info gauge\n")
	// %q covers the exposition format's label-value escapes (backslash,
	// quote, newline); build metadata has no other control characters.
	fmt.Fprintf(&b, "tierdb_build_info{version=%q,goversion=%q", bi.Version, bi.GoVersion)
	if bi.Revision != "" {
		fmt.Fprintf(&b, ",revision=%q", bi.Revision)
	}
	fmt.Fprintf(&b, "} 1\n")
	return b.Bytes()
}

// RenderUptime renders the tierdb_uptime_seconds gauge.
func RenderUptime(d time.Duration) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "# HELP tierdb_uptime_seconds Seconds since the instance opened.\n")
	fmt.Fprintf(&b, "# TYPE tierdb_uptime_seconds gauge\n")
	fmt.Fprintf(&b, "tierdb_uptime_seconds %g\n", d.Seconds())
	return b.Bytes()
}

// promName sanitizes an instrument name into a legal Prometheus metric
// name under the tierdb namespace: every character outside
// [a-zA-Z0-9_:] becomes an underscore.
func promName(name string) string {
	out := []byte("tierdb_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// escapeHelp escapes a raw instrument name for use as HELP text:
// the exposition format requires backslash and newline escapes there.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// sortedKeys returns the map's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
