// The /trace/{id} endpoint and the health/readiness probes.
package obsrv

import (
	"fmt"
	"net/http"
	"strings"

	"tierdb/internal/trace"
)

// traceReply is the JSON shape of /trace/{id}.
type traceReply struct {
	TraceID string `json:"trace_id"`
	// Spans is the trace's span tree. Spans whose parent aged out of
	// the ring (or ran in another process) appear as extra roots.
	Spans []*trace.Node `json:"spans"`
	// SlowestPath lists the span IDs on the slowest root-to-leaf chain
	// of the first root.
	SlowestPath []trace.SpanID `json:"slowest_path,omitempty"`
}

// serveTrace answers /trace/{id}: the full span tree of one distributed
// trace, as JSON or (?format=text) an indented listing with the slowest
// path marked '*'.
func (s *Server) serveTrace(w http.ResponseWriter, r *http.Request) {
	if s.Spans == nil {
		http.Error(w, "span capture not enabled", http.StatusNotFound)
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/trace/")
	if raw == "" || strings.Contains(raw, "/") {
		http.Error(w, "want /trace/{id}", http.StatusBadRequest)
		return
	}
	id, err := trace.ParseTraceID(raw)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spans := s.Spans.ByTrace(id)
	if len(spans) == 0 {
		http.Error(w, "no spans for trace "+id.String()+" (aged out or never sampled)", http.StatusNotFound)
		return
	}
	roots := trace.BuildTree(spans)
	highlight := trace.SlowestPath(roots[0])
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "trace %s: %d spans (slowest path marked *)\n", id, len(spans))
		fmt.Fprint(w, trace.RenderText(roots, highlight))
		return
	}
	reply := traceReply{TraceID: id.String(), Spans: roots}
	for sid := range highlight {
		reply.SlowestPath = append(reply.SlowestPath, sid)
	}
	sortSpanIDs(reply.SlowestPath)
	writeJSON(w, reply)
}

// sortSpanIDs orders span IDs ascending for deterministic JSON.
func sortSpanIDs(ids []trace.SpanID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// serveHealthz is the liveness probe: if the handler runs, the process
// is alive. Always 200.
func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// serveReadyz is the readiness probe: 200 once WAL recovery finished
// and the instance accepts work, 503 before that (and again while
// closing). 404 when no readiness source is wired.
func (s *Server) serveReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Ready == nil {
		http.Error(w, "no readiness source", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
		return
	}
	fmt.Fprintln(w, "ready")
}
