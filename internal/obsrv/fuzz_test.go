package obsrv

import (
	"testing"

	"tierdb/internal/metrics"
)

// FuzzPrometheusExposition drives RenderPrometheus with a registry
// derived from arbitrary bytes — hostile instrument names, arbitrary
// counter/gauge/histogram values — and asserts the output always
// passes the strict exposition parser: legal name charset, escaped
// labels, monotone cumulative buckets, +Inf == _count.
func FuzzPrometheusExposition(f *testing.F) {
	f.Add([]byte("exec.rows\x00scanned\xffweird"), int64(42), int64(7))
	f.Add([]byte("a"), int64(-5), int64(0))
	f.Add([]byte("selectivity.misestimate{evil=\"x\"}\n# HELP"), int64(1<<40), int64(3))
	f.Fuzz(func(t *testing.T, name []byte, v int64, obs int64) {
		reg := metrics.NewRegistry()
		n := string(name)
		if n == "" {
			n = "empty"
		}
		reg.Counter(n).Add(v)
		reg.Gauge(n + ".gauge").Set(v)
		h := reg.Histogram(n+".hist", []int64{1, 10, 100})
		for i := int64(0); i < obs%64; i++ {
			h.Observe(v + i)
		}
		out := RenderPrometheus(reg.Snapshot())
		if err := ValidateExposition(out); err != nil {
			t.Fatalf("rendered exposition invalid: %v\n%s", err, out)
		}
	})
}
