package obsrv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tierdb/internal/explain"
	"tierdb/internal/metrics"
)

// testServer wires a Server with deterministic stub sources; the
// end-to-end wiring against a live DB is covered by the root package's
// observability test.
func testServer() *Server {
	recent := metrics.NewTraceRing(8)
	slow := metrics.NewTraceRing(4)
	for i := 0; i < 12; i++ {
		e := &metrics.TraceEntry{
			UnixNano: int64(1_700_000_000_000_000_000 + i),
			WallNs:   int64(1000 * (i + 1)),
			Trace:    &metrics.Trace{Table: "orders", RowsQualified: i},
		}
		recent.Add(e)
		if i%3 == 0 {
			c := *e
			slow.Add(&c)
		}
	}
	reg := fixedRegistry()
	return &Server{
		Snapshot:      reg.Snapshot,
		Recent:        recent,
		Slow:          slow,
		SlowThreshold: 500 * time.Microsecond,
		Workload: func() []TableWorkload {
			return []TableWorkload{{
				Table:       "orders",
				Rows:        1000,
				MemoryBytes: 4096,
				Columns: []WorkloadColumn{
					{Index: 0, Name: "id", SizeBytes: 8000, InDRAM: true, AccessCount: 3, EstimatedSelectivity: 0.001},
					{Index: 1, Name: "status", SizeBytes: 1000, AccessCount: 9, EstimatedSelectivity: 0.25, ObservedSelectivity: 0.4, ObservedSamples: 9},
				},
				Plans: []PlanInfo{{Columns: []int{1}, Count: 9}},
			}}
		},
		Tables: func() []string { return []string{"orders"} },
		Advise: func(table string, q AdvisorQuery) (*AdvisorReport, error) {
			if table != "orders" {
				return nil, fmt.Errorf("no such table %q", table)
			}
			return &AdvisorReport{
				Table:       table,
				Method:      "explicit",
				BudgetBytes: q.BudgetBytes,
				Current:     Placement{InDRAM: []bool{true, false}, ModeledCost: 100},
				Recommended: Placement{InDRAM: []bool{false, true}, ModeledCost: 60},
				CostDelta:   -40,
				Improvement: 0.4,
				Changed:     true,
				Beta:        q.Beta,
			}, nil
		},
		Explain: func(table string, specs []explain.PredicateSpec, project []string, analyze bool) (*explain.Plan, error) {
			if table != "orders" {
				return nil, fmt.Errorf("no such table %q", table)
			}
			mode := explain.ModeExplain
			if analyze {
				mode = explain.ModeAnalyze
			}
			nodes := make([]explain.Node, 0, len(specs))
			for i, sp := range specs {
				nodes = append(nodes, explain.Node{
					Operator: "scan", Partition: "main", Column: i,
					ColumnName: sp.Column, Tier: "dram",
				})
			}
			return &explain.Plan{Table: table, Mode: mode, Parallelism: 1, Nodes: nodes}, nil
		},
		Adaptive: func() *AdaptiveReport {
			return &AdaptiveReport{
				Enabled: true,
				Alpha:   4e-9,
				Beta:    2e-10,
				Cycles:  7,
				Applies: 2,
				Skips:   5,
				Tables: []AdaptiveDecision{{
					Table:  "orders",
					Cycle:  7,
					Action: "skipped",
					Reason: "layout already optimal",
				}},
			}
		},
	}
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestServeMetricsAndStats(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if err := ValidateExposition(body); err != nil {
		t.Fatalf("/metrics output invalid: %v\n%s", err, body)
	}
	if !strings.Contains(string(body), "tierdb_exec_rows_scanned_total 12345") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	code, body = get(t, ts, "/stats.json")
	if code != http.StatusOK {
		t.Fatalf("/stats.json: status %d", code)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/stats.json not a snapshot: %v", err)
	}
	if snap.Counters["exec.rows.scanned"] != 12345 {
		t.Errorf("snapshot round-trip lost counter: %+v", snap.Counters)
	}
}

func TestServeTraces(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()

	code, body := get(t, ts, "/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces: status %d", code)
	}
	var reply struct {
		Ring     string                `json:"ring"`
		Capacity int                   `json:"capacity"`
		Added    uint64                `json:"added"`
		Entries  []*metrics.TraceEntry `json:"entries"`
	}
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatalf("/traces: %v", err)
	}
	if reply.Ring != "recent" || reply.Capacity != 8 || reply.Added != 12 {
		t.Errorf("ring header wrong: %+v", reply)
	}
	if len(reply.Entries) != 8 {
		t.Fatalf("ring returned %d entries, want its bound 8", len(reply.Entries))
	}
	for i := 1; i < len(reply.Entries); i++ {
		if reply.Entries[i].Seq > reply.Entries[i-1].Seq {
			t.Errorf("entries not newest-first at %d", i)
		}
	}
	if tr := reply.Entries[0].Trace; tr == nil || tr.Table != "orders" {
		t.Errorf("trace payload lost in round-trip: %+v", reply.Entries[0])
	}

	code, body = get(t, ts, "/traces?slow=1&n=2")
	if code != http.StatusOK {
		t.Fatalf("/traces?slow=1: status %d", code)
	}
	var slowReply struct {
		Ring            string                `json:"ring"`
		SlowThresholdNs int64                 `json:"slow_threshold_ns"`
		Entries         []*metrics.TraceEntry `json:"entries"`
	}
	if err := json.Unmarshal(body, &slowReply); err != nil {
		t.Fatal(err)
	}
	if slowReply.Ring != "slow" || len(slowReply.Entries) != 2 {
		t.Errorf("slow ring reply wrong: ring=%s entries=%d", slowReply.Ring, len(slowReply.Entries))
	}
	if slowReply.SlowThresholdNs != 500_000 {
		t.Errorf("slow threshold %d, want 500000", slowReply.SlowThresholdNs)
	}

	if code, _ := get(t, ts, "/traces?n=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad n accepted: status %d", code)
	}
	code, body = get(t, ts, "/traces?format=text")
	if code != http.StatusOK || !strings.Contains(string(body), "recent traces") {
		t.Errorf("text format: status %d body %q", code, body)
	}
}

func TestServeWorkload(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()
	code, body := get(t, ts, "/workload")
	if code != http.StatusOK {
		t.Fatalf("/workload: status %d", code)
	}
	var reply struct {
		Tables []TableWorkload `json:"tables"`
	}
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Tables) != 1 || reply.Tables[0].Table != "orders" {
		t.Fatalf("workload reply: %+v", reply)
	}
	col := reply.Tables[0].Columns[1]
	if col.ObservedSelectivity != 0.4 || col.ObservedSamples != 9 {
		t.Errorf("observed selectivity lost: %+v", col)
	}
	if code, body := get(t, ts, "/workload?format=text"); code != http.StatusOK ||
		!strings.Contains(string(body), "s_obs=") {
		t.Errorf("workload text format: status %d body %q", code, body)
	}
}

func TestServeAdvisor(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()
	code, body := get(t, ts, "/layout/advisor?table=orders&budget=2048")
	if code != http.StatusOK {
		t.Fatalf("/layout/advisor: status %d: %s", code, body)
	}
	var reply struct {
		Reports []*AdvisorReport `json:"reports"`
	}
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Reports) != 1 {
		t.Fatalf("want 1 report, got %d", len(reply.Reports))
	}
	rep := reply.Reports[0]
	if rep.BudgetBytes != 2048 || !rep.Changed || rep.CostDelta != -40 {
		t.Errorf("advisor report: %+v", rep)
	}

	// No table → advises every table from Tables().
	code, body = get(t, ts, "/layout/advisor")
	if code != http.StatusOK {
		t.Fatalf("all-tables advisor: status %d", code)
	}
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Reports) != 1 || reply.Reports[0].Table != "orders" {
		t.Errorf("all-tables reports: %+v", reply.Reports)
	}

	if code, _ := get(t, ts, "/layout/advisor?table=nope"); code != http.StatusBadRequest {
		t.Errorf("unknown table: status %d", code)
	}
	if code, _ := get(t, ts, "/layout/advisor?w=2"); code != http.StatusBadRequest {
		t.Errorf("bad w accepted: status %d", code)
	}

	// Reallocation-aware advice: beta is parsed and echoed.
	code, body = get(t, ts, "/layout/advisor?table=orders&beta=2e-10")
	if code != http.StatusOK {
		t.Fatalf("beta advisor: status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Reports) != 1 || reply.Reports[0].Beta != 2e-10 {
		t.Errorf("beta not echoed: %+v", reply.Reports)
	}
	if code, _ := get(t, ts, "/layout/advisor?beta=-1"); code != http.StatusBadRequest {
		t.Errorf("negative beta accepted: status %d", code)
	}
	if code, _ := get(t, ts, "/layout/advisor?beta=junk"); code != http.StatusBadRequest {
		t.Errorf("junk beta accepted: status %d", code)
	}
}

func TestServeAdaptive(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()
	code, body := get(t, ts, "/layout/adaptive")
	if code != http.StatusOK {
		t.Fatalf("/layout/adaptive: status %d: %s", code, body)
	}
	var rep AdaptiveReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Enabled || rep.Cycles != 7 || rep.Applies != 2 || rep.Skips != 5 {
		t.Errorf("adaptive report round-trip: %+v", rep)
	}
	if len(rep.Tables) != 1 || rep.Tables[0].Reason != "layout already optimal" {
		t.Errorf("adaptive decisions: %+v", rep.Tables)
	}
}

func TestServePprofAndIndex(t *testing.T) {
	ts := httptest.NewServer(testServer().Handler())
	defer ts.Close()
	code, body := get(t, ts, "/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof goroutine: status %d", code)
	}
	code, body = get(t, ts, "/")
	if code != http.StatusOK || !strings.Contains(string(body), "/layout/advisor") {
		t.Errorf("index: status %d body %q", code, body)
	}
	if code, _ := get(t, ts, "/no/such/page"); code != http.StatusNotFound {
		t.Errorf("unknown path: status %d", code)
	}
}

// TestNilSources proves a partially wired server degrades to 404s
// instead of panicking.
func TestNilSources(t *testing.T) {
	ts := httptest.NewServer((&Server{}).Handler())
	defer ts.Close()
	for _, path := range []string{"/metrics", "/stats.json", "/traces", "/workload", "/layout/advisor", "/layout/adaptive"} {
		if code, _ := get(t, ts, path); code != http.StatusNotFound {
			t.Errorf("%s on empty server: status %d, want 404", path, code)
		}
	}
}
