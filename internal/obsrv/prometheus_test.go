package obsrv

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tierdb/internal/metrics"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixedRegistry builds a deterministic registry exercising all three
// instrument kinds, including an untouched histogram bucket and an
// overflow observation.
func fixedRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	c := reg.Counter("exec.rows.scanned")
	c.Add(12345)
	reg.Counter("delta.inserts").Inc()
	g := reg.Gauge("amm.frames_used")
	g.Set(96)
	g.Set(64)
	h := reg.Histogram("exec.scan_ns", []int64{10, 100, 1000})
	h.Observe(7)
	h.Observe(7)
	h.Observe(55)
	h.Observe(5000)                                   // overflow bucket
	reg.Histogram("merge.pause_ns", []int64{50, 500}) // never observed
	return reg
}

func TestRenderPrometheusGolden(t *testing.T) {
	got := RenderPrometheus(fixedRegistry().Snapshot())
	goldenPath := filepath.Join("testdata", "metrics_golden.prom")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("exposition drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
	if err := ValidateExposition(got); err != nil {
		t.Errorf("golden output does not validate: %v", err)
	}
}

// TestRenderPrometheusCumulative pins the bucket arithmetic: bucket
// counts in the snapshot are per-bucket, the exposition must be
// cumulative with +Inf equal to _count.
func TestRenderPrometheusCumulative(t *testing.T) {
	reg := metrics.NewRegistry()
	h := reg.Histogram("io.read_ns", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(50)
	h.Observe(999)
	out := string(RenderPrometheus(reg.Snapshot()))
	for _, want := range []string{
		`tierdb_io_read_ns_bucket{le="10"} 1`,
		`tierdb_io_read_ns_bucket{le="100"} 3`,
		`tierdb_io_read_ns_bucket{le="+Inf"} 4`,
		"tierdb_io_read_ns_count 4",
		"tierdb_io_read_ns_sum 1104",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, out)
		}
	}
}

// TestValidateExpositionRejects spot-checks the validator's teeth so
// the fuzz target is meaningful.
func TestValidateExpositionRejects(t *testing.T) {
	bad := []struct{ name, in string }{
		{"bad name", "9leading 1\n"},
		{"bad value", "metric abc\n"},
		{"unterminated labels", `metric{le="1 2` + "\n"},
		{"bad escape", `metric{l="\q"} 1` + "\n"},
		{"non-cumulative histogram", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n"},
		{"missing +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\n"},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 6\n"},
		{"duplicate TYPE", "# TYPE m counter\n# TYPE m gauge\nm 1\n"},
		{"unknown type", "# TYPE m matrix\n"},
	}
	for _, tc := range bad {
		if err := ValidateExposition([]byte(tc.in)); err == nil {
			t.Errorf("%s: validator accepted %q", tc.name, tc.in)
		}
	}
	good := "# HELP m_total helper text here\n# TYPE m_total counter\nm_total 3 1700000000000\n"
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Errorf("validator rejected valid input: %v", err)
	}
}
