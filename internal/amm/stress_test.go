package amm

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"tierdb/internal/storage"
)

// TestCacheConcurrentStress hammers Get/Release/Write/Stats/Flush/Drop
// from many goroutines against a cache much smaller than the page set,
// under the race detector. Every Get must observe the page's one true
// content (writers always store the same deterministic fill), pin
// counts must balance out to zero, and no page content may be torn.
func TestCacheConcurrentStress(t *testing.T) {
	const (
		nPages     = 64
		nFrames    = 8
		goroutines = 16
		opsPerG    = 300
	)
	store := storage.NewMemStore()
	fill := func(page int) []byte {
		return bytes.Repeat([]byte{byte(page)}, storage.PageSize)
	}
	for i := 0; i < nPages; i++ {
		id, err := store.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := store.WritePage(id, fill(i)); err != nil {
			t.Fatal(err)
		}
	}
	cache, err := New(nFrames, store)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for op := 0; op < opsPerG; op++ {
				page := rng.Intn(nPages)
				id := storage.PageID(page)
				switch rng.Intn(10) {
				case 0:
					if err := cache.Write(id, fill(page)); err != nil && !errors.Is(err, ErrNoEvictableFrame) {
						t.Errorf("Write(%d): %v", page, err)
						return
					}
				case 1:
					_ = cache.Stats()
					_ = cache.PinnedFrames()
				case 2:
					if err := cache.Flush(); err != nil {
						t.Errorf("Flush: %v", err)
						return
					}
				case 3:
					cache.Drop()
				default:
					data, _, err := cache.Get(id)
					if err != nil {
						if errors.Is(err, ErrNoEvictableFrame) {
							continue // transient: all frames pinned by peers
						}
						t.Errorf("Get(%d): %v", page, err)
						return
					}
					// Spot-check the pinned buffer: any torn read or
					// misrouted frame surfaces here (and as a race).
					if data[0] != byte(page) || data[len(data)-1] != byte(page) {
						t.Errorf("Get(%d) returned frame of page %d", page, data[0])
						cache.Release(id)
						return
					}
					cache.Release(id)
				}
			}
		}(g)
	}
	wg.Wait()

	if pinned := cache.PinnedFrames(); pinned != 0 {
		t.Errorf("%d frames still pinned after all goroutines released", pinned)
	}
	// Flush and verify nothing was corrupted end to end.
	if err := cache.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, storage.PageSize)
	for i := 0; i < nPages; i++ {
		if err := store.ReadPage(storage.PageID(i), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, fill(i)) {
			t.Errorf("page %d corrupted after stress", i)
		}
	}
	stats := cache.Stats()
	if stats.Hits+stats.Misses == 0 {
		t.Error("stress run recorded no cache accesses")
	}
}
