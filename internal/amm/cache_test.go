package amm

import (
	"sync"
	"testing"

	"tierdb/internal/metrics"
	"tierdb/internal/storage"
)

func newTestStore(t *testing.T, pages int) (storage.Store, []storage.PageID) {
	t.Helper()
	s := storage.NewMemStore()
	ids := make([]storage.PageID, pages)
	buf := make([]byte, storage.PageSize)
	for i := range ids {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		buf[0] = byte(i)
		if err := s.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	return s, ids
}

func TestCacheHitMiss(t *testing.T) {
	s, ids := newTestStore(t, 4)
	c, err := New(2, s)
	if err != nil {
		t.Fatal(err)
	}
	data, hit, err := c.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first access was a hit")
	}
	if data[0] != 0 {
		t.Errorf("page content = %d, want 0", data[0])
	}
	c.Release(ids[0])
	_, hit, err = c.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second access missed")
	}
	c.Release(ids[0])
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", st.HitRate())
	}
}

func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	s, ids := newTestStore(t, 4)
	c, _ := New(2, s)
	for _, id := range ids[:3] { // touch 0,1,2 through a 2-frame cache
		if _, _, err := c.Get(id); err != nil {
			t.Fatal(err)
		}
		c.Release(id)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions recorded")
	}
	// Page 2 must be resident; page 0 must have been evicted.
	_, hit, _ := c.Get(ids[2])
	if !hit {
		t.Error("most recent page not resident")
	}
	c.Release(ids[2])
}

func TestCachePinnedFramesNotEvicted(t *testing.T) {
	s, ids := newTestStore(t, 4)
	c, _ := New(2, s)
	if err := c.Pin(ids[0]); err != nil {
		t.Fatal(err)
	}
	// Stream the remaining pages through the other frame.
	for i := 1; i < 4; i++ {
		if _, _, err := c.Get(ids[i]); err != nil {
			t.Fatal(err)
		}
		c.Release(ids[i])
	}
	_, hit, _ := c.Get(ids[0])
	if !hit {
		t.Error("pinned page was evicted")
	}
	c.Release(ids[0])
	c.Unpin(ids[0])
}

func TestCacheAllPinnedFails(t *testing.T) {
	s, ids := newTestStore(t, 3)
	c, _ := New(2, s)
	if err := c.Pin(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.Pin(ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(ids[2]); err != ErrNoEvictableFrame {
		t.Errorf("err = %v, want ErrNoEvictableFrame", err)
	}
}

func TestCacheWriteBack(t *testing.T) {
	s, ids := newTestStore(t, 2)
	c, _ := New(1, s)
	data := make([]byte, storage.PageSize)
	data[0] = 42
	if err := c.Write(ids[0], data); err != nil {
		t.Fatal(err)
	}
	// Force eviction by touching another page.
	if _, _, err := c.Get(ids[1]); err != nil {
		t.Fatal(err)
	}
	c.Release(ids[1])
	buf := make([]byte, storage.PageSize)
	if err := s.ReadPage(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 42 {
		t.Errorf("dirty page not written back: byte0 = %d", buf[0])
	}
}

func TestCacheFlush(t *testing.T) {
	s, ids := newTestStore(t, 2)
	c, _ := New(2, s)
	data := make([]byte, storage.PageSize)
	data[0] = 7
	if err := c.Write(ids[1], data); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, storage.PageSize)
	if err := s.ReadPage(ids[1], buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 {
		t.Errorf("flush did not persist: byte0 = %d", buf[0])
	}
}

func TestCacheDrop(t *testing.T) {
	s, ids := newTestStore(t, 2)
	c, _ := New(2, s)
	if _, _, err := c.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	c.Release(ids[0])
	c.Drop()
	_, hit, err := c.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("Drop left page resident")
	}
	c.Release(ids[0])
}

func TestCacheRejectsBadConfig(t *testing.T) {
	if _, err := New(0, storage.NewMemStore()); err == nil {
		t.Error("accepted zero frames")
	}
	c, _ := New(1, storage.NewMemStore())
	if err := c.Write(0, make([]byte, 10)); err == nil {
		t.Error("accepted short write buffer")
	}
}

func TestCacheGetMissingPageFails(t *testing.T) {
	s := storage.NewMemStore()
	c, _ := New(2, s)
	if _, _, err := c.Get(5); err == nil {
		t.Error("Get of unallocated page succeeded")
	}
	// A failed fault must not leave a phantom index entry.
	if _, _, err := c.Get(5); err == nil {
		t.Error("second Get of unallocated page succeeded")
	}
}

func TestCacheConcurrent(t *testing.T) {
	s, ids := newTestStore(t, 32)
	c, _ := New(8, s)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := ids[(g*7+i*13)%len(ids)]
				data, _, err := c.Get(id)
				if err != nil {
					t.Error(err)
					return
				}
				if data[0] != byte(int(id)) {
					t.Errorf("page %d content mismatch: %d", id, data[0])
					c.Release(id)
					return
				}
				c.Release(id)
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 8*500 {
		t.Errorf("accesses = %d, want %d", st.Hits+st.Misses, 8*500)
	}
	if c.Capacity() != 8 {
		t.Errorf("Capacity = %d, want 8", c.Capacity())
	}
}

// TestCacheObserve drives an observed cache through hits, misses and
// evictions and checks the registry instruments agree with Stats(),
// that the fault-latency histogram saw every miss, and that the
// lock-free pinned-frame count tracks pin/unpin transitions exactly.
func TestCacheObserve(t *testing.T) {
	s, ids := newTestStore(t, 4)
	c, err := New(2, s)
	if err != nil {
		t.Fatal(err)
	}
	r := metrics.NewRegistry()
	c.Observe(r)

	// Miss, hit (double-pinned), then walk all pages to force evictions.
	if _, _, err := c.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	if c.PinnedFrames() != 1 {
		t.Errorf("pinned = %d, want 1", c.PinnedFrames())
	}
	if _, _, err := c.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	if c.PinnedFrames() != 1 {
		t.Errorf("pinned after re-pin = %d, want 1 (same frame)", c.PinnedFrames())
	}
	c.Release(ids[0])
	if c.PinnedFrames() != 1 {
		t.Errorf("pinned after first release = %d, want 1", c.PinnedFrames())
	}
	c.Release(ids[0])
	if c.PinnedFrames() != 0 {
		t.Errorf("pinned after full release = %d, want 0", c.PinnedFrames())
	}
	for _, id := range ids {
		if _, _, err := c.Get(id); err != nil {
			t.Fatal(err)
		}
		c.Release(id)
	}

	st := c.Stats()
	snap := r.Snapshot()
	if got := snap.Counters["amm.hits"]; got != st.Hits {
		t.Errorf("amm.hits = %d, stats say %d", got, st.Hits)
	}
	if got := snap.Counters["amm.misses"]; got != st.Misses {
		t.Errorf("amm.misses = %d, stats say %d", got, st.Misses)
	}
	if got := snap.Counters["amm.evictions"]; got != st.Evictions {
		t.Errorf("amm.evictions = %d, stats say %d", got, st.Evictions)
	}
	if st.Evictions == 0 {
		t.Error("walk caused no evictions; test is not exercising eviction")
	}
	h := snap.Histograms["amm.fault_ns"]
	if h.Count != st.Misses {
		t.Errorf("fault histogram saw %d faults, want %d", h.Count, st.Misses)
	}
	g := snap.Gauges["amm.pinned_frames"]
	if g.Value != 0 || g.Max < 1 {
		t.Errorf("pinned gauge = %+v, want value 0 with max >= 1", g)
	}
}
