// Package amm provides a fixed-capacity page cache with pinning,
// substituting for EMC's Advanced Memory Manager (AMM) the paper uses
// for data eviction and caching (Section II-C): a pre-allocated
// fixed-size page cache in front of secondary storage. Eviction uses the
// CLOCK second-chance policy; pinned frames are never evicted.
package amm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tierdb/internal/metrics"
	"tierdb/internal/storage"
)

// ErrNoEvictableFrame is returned when every frame is pinned and a miss
// cannot be admitted.
var ErrNoEvictableFrame = errors.New("amm: all frames pinned")

// Stats reports cache effectiveness.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// HitRate returns hits / (hits+misses), or 0 for an untouched cache.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type frame struct {
	id      storage.PageID
	data    []byte
	valid   bool
	loading bool // fault IO in flight; data not yet readable
	pins    int
	refbit  bool
	dirty   bool
}

// Cache is a fixed-size page cache over a storage.Store. All methods
// are safe for concurrent use; fault IO happens outside the cache lock
// so hits on other pages proceed while a miss is being served.
type Cache struct {
	mu      sync.Mutex
	loaded  sync.Cond // signalled when a loading frame settles or pins drop
	backing storage.Store
	frames  []frame
	index   map[storage.PageID]int
	hand    int
	stats   Stats
	// pinned counts frames with a nonzero pin count. It is written only
	// under mu (on 0→1 and 1→0 pin transitions) but read lock-free, so
	// PinnedFrames never contends with a fault in progress.
	pinned atomic.Int64

	// Optional observability handles (nil when unobserved; all metrics
	// instruments are no-ops on nil).
	cHits      *metrics.Counter
	cMisses    *metrics.Counter
	cEvictions *metrics.Counter
	hFault     *metrics.Histogram
	gPinned    *metrics.Gauge
}

// New creates a cache with the given number of page frames in front of
// backing. Frames are pre-allocated, as with AMM's fixed-size caches.
func New(frames int, backing storage.Store) (*Cache, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("amm: frame count %d must be positive", frames)
	}
	c := &Cache{
		backing: backing,
		frames:  make([]frame, frames),
		index:   make(map[storage.PageID]int, frames),
	}
	c.loaded.L = &c.mu
	for i := range c.frames {
		c.frames[i].data = make([]byte, storage.PageSize)
	}
	return c, nil
}

// Capacity returns the number of frames.
func (c *Cache) Capacity() int { return len(c.frames) }

// Observe registers the cache's instruments with a metrics registry:
// amm.hits / amm.misses / amm.evictions counters, an amm.fault_ns
// wall-clock fault-latency histogram, and an amm.pinned_frames gauge
// whose high-watermark records peak pin pressure. A nil registry leaves
// the cache unobserved at zero cost.
func (c *Cache) Observe(r *metrics.Registry) {
	c.cHits = r.Counter("amm.hits")
	c.cMisses = r.Counter("amm.misses")
	c.cEvictions = r.Counter("amm.evictions")
	c.hFault = r.Histogram("amm.fault_ns", metrics.IOLatencyBuckets())
	c.gPinned = r.Gauge("amm.pinned_frames")
}

// pinLocked adds one pin to f, maintaining the lock-free pinned-frame
// count on the 0→1 transition. Caller holds c.mu.
func (c *Cache) pinLocked(f *frame) {
	f.pins++
	if f.pins == 1 {
		c.pinned.Add(1)
		c.gPinned.Add(1)
	}
}

// unpinLocked removes one pin from f, maintaining the lock-free
// pinned-frame count on the 1→0 transition. Caller holds c.mu.
func (c *Cache) unpinLocked(f *frame) {
	f.pins--
	if f.pins == 0 {
		c.pinned.Add(-1)
		c.gPinned.Add(-1)
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Get returns the cached page contents, faulting it in from backing
// storage on a miss, and pins the frame. The returned slice aliases the
// frame buffer and is valid until Release; callers must not write to it.
// The boolean reports whether the access was a hit.
func (c *Cache) Get(id storage.PageID) ([]byte, bool, error) {
	return c.GetVia(id, nil)
}

// GetVia is Get with the fault IO routed through the given store
// (nil selects the cache's backing store). Parallel scan workers pass
// per-worker timed views of the same device so that fault latencies are
// charged to per-worker clocks; the cached frames stay shared.
func (c *Cache) GetVia(id storage.PageID, backing storage.Store) ([]byte, bool, error) {
	if backing == nil {
		backing = c.backing
	}
	c.mu.Lock()
	for {
		fi, ok := c.index[id]
		if !ok {
			break
		}
		f := &c.frames[fi]
		if !f.loading {
			c.pinLocked(f)
			f.refbit = true
			c.stats.Hits++
			c.cHits.Inc()
			c.mu.Unlock()
			return f.data, true, nil
		}
		// Another goroutine is faulting this page in: wait for the
		// frame to settle, then re-check from scratch (the load may
		// have failed and removed the index entry).
		c.loaded.Wait()
	}
	c.stats.Misses++
	c.cMisses.Inc()
	fi, err := c.evictLocked()
	if err != nil {
		c.mu.Unlock()
		return nil, false, err
	}
	f := &c.frames[fi]
	f.id = id
	f.valid = true
	f.loading = true
	c.pinLocked(f) // evictLocked only yields unpinned frames
	f.refbit = true
	c.index[id] = fi
	// Drop the cache lock during IO so hits on other pages proceed.
	// The pin keeps the frame from eviction, the loading flag keeps
	// concurrent readers of the same page off the buffer until the
	// data is published.
	c.mu.Unlock()
	var faultStart time.Time
	if c.hFault != nil {
		faultStart = time.Now()
	}
	rerr := backing.ReadPage(id, f.data)
	if c.hFault != nil {
		c.hFault.Observe(time.Since(faultStart).Nanoseconds())
	}
	c.mu.Lock()
	f.loading = false
	if rerr != nil {
		f.valid = false
		c.unpinLocked(f)
		delete(c.index, id)
	}
	c.loaded.Broadcast()
	c.mu.Unlock()
	if rerr != nil {
		return nil, false, fmt.Errorf("amm: fault page %d: %w", id, rerr)
	}
	return f.data, false, nil
}

// Release unpins a page previously returned by Get.
func (c *Cache) Release(id storage.PageID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fi, ok := c.index[id]; ok && c.frames[fi].pins > 0 {
		c.unpinLocked(&c.frames[fi])
		if c.frames[fi].pins == 0 {
			c.loaded.Broadcast() // a writer may be waiting for readers to drain
		}
	}
}

// PinnedFrames returns the number of frames with a nonzero pin count —
// zero whenever no Get is outstanding. The count is maintained on pin
// transitions and read lock-free, so monitoring it never contends with
// a fault in progress. Fault-injection tests use it to prove that error
// paths leave no frame pinned.
func (c *Cache) PinnedFrames() int {
	return int(c.pinned.Load())
}

// Pin marks a cached page as unevictable until Unpin; it faults the
// page in if absent. Unlike Get/Release pairs, Pin is sticky across
// accesses (the paper pins MVCC columns and indices in DRAM).
func (c *Cache) Pin(id storage.PageID) error {
	_, _, err := c.Get(id)
	return err // keep the Get pin
}

// Unpin releases a sticky pin.
func (c *Cache) Unpin(id storage.PageID) { c.Release(id) }

// evictLocked finds a victim frame via CLOCK and returns its index. The
// caller holds c.mu.
func (c *Cache) evictLocked() (int, error) {
	for sweep := 0; sweep < 2*len(c.frames); sweep++ {
		f := &c.frames[c.hand]
		idx := c.hand
		c.hand = (c.hand + 1) % len(c.frames)
		if !f.valid {
			return idx, nil
		}
		if f.pins > 0 || f.loading {
			continue
		}
		if f.refbit {
			f.refbit = false
			continue
		}
		// Victim found.
		if f.dirty {
			if err := c.backing.WritePage(f.id, f.data); err != nil {
				return 0, fmt.Errorf("amm: write back page %d: %w", f.id, err)
			}
			f.dirty = false
		}
		delete(c.index, f.id)
		f.valid = false
		c.stats.Evictions++
		c.cEvictions.Inc()
		return idx, nil
	}
	return 0, ErrNoEvictableFrame
}

// Write updates a page through the cache (write-allocate) and marks the
// frame dirty; the page reaches backing storage on eviction or Flush.
// The write waits until no reader holds a pin on the page (Get hands
// out the frame buffer directly, so mutating it under a reader would
// race); a goroutine must not Write a page it still has pinned.
func (c *Cache) Write(id storage.PageID, data []byte) error {
	if len(data) != storage.PageSize {
		return fmt.Errorf("amm: buffer is %d bytes, want %d", len(data), storage.PageSize)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var fi int
	for {
		var ok bool
		fi, ok = c.index[id]
		if !ok {
			var err error
			fi, err = c.evictLocked()
			if err != nil {
				return err
			}
			c.frames[fi].id = id
			c.frames[fi].valid = true
			c.frames[fi].pins = 0
			c.index[id] = fi
			c.stats.Misses++
			c.cMisses.Inc()
			break
		}
		if !c.frames[fi].loading && c.frames[fi].pins == 0 {
			break
		}
		c.loaded.Wait() // drain concurrent readers / in-flight fault
	}
	f := &c.frames[fi]
	copy(f.data, data)
	f.refbit = true
	f.dirty = true
	return nil
}

// Flush writes all dirty frames back to the backing store.
func (c *Cache) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.frames {
		f := &c.frames[i]
		if f.valid && f.dirty {
			if err := c.backing.WritePage(f.id, f.data); err != nil {
				return fmt.Errorf("amm: flush page %d: %w", f.id, err)
			}
			f.dirty = false
		}
	}
	return nil
}

// Invalidate drops the given pages from the cache without writing dirty
// data back. The merge calls it before returning a retired SSCG's pages
// to the store freelist, so a recycled page id can never serve stale
// bytes. It waits for in-flight pins and loads on those pages to drain
// (by the time a group is freed no reader should reference it, so the
// wait is normally instant).
func (c *Cache) Invalidate(ids []storage.PageID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range ids {
		for {
			fi, ok := c.index[id]
			if !ok {
				break
			}
			f := &c.frames[fi]
			if f.loading || f.pins > 0 {
				c.loaded.Wait()
				continue // re-check: the frame may have moved or settled
			}
			delete(c.index, id)
			f.valid = false
			f.dirty = false
			break
		}
	}
}

// Drop invalidates every unpinned frame without writing dirty data back;
// test helper for fault-injection scenarios.
func (c *Cache) Drop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.frames {
		f := &c.frames[i]
		if f.valid && f.pins == 0 {
			delete(c.index, f.id)
			f.valid = false
			f.dirty = false
		}
	}
}
