// Package telemetry is tierdb's structured logging layer: a thin,
// opinionated construction of stdlib log/slog that every engine
// component shares. Nothing in the library tree writes to os.Stderr
// directly (CI enforces this with a grep lint); components log through
// a *slog.Logger built here — leveled, JSON or text, with an
// injectable sink so embedders and tests capture exactly what a
// daemon would print.
//
// The flagship consumer is the per-request "wide event" the network
// server emits behind Config.RequestLog: one log record per request
// carrying the trace ID, opcode, table, row count, queue wait and
// status, so a slow or failed request is greppable and joinable with
// its /trace/{id} tree by a single ID.
package telemetry

import (
	"context"
	"io"
	"log/slog"
	"os"
	"strings"
)

// Options configures a logger. The zero value is a text logger at
// Info level on os.Stderr.
type Options struct {
	// Level is the minimum level emitted: "debug", "info", "warn" or
	// "error" (default "info").
	Level string
	// Format selects the handler: "text" (default) or "json".
	Format string
	// Sink receives the output (default os.Stderr).
	Sink io.Writer
}

// New builds a logger from opts. Unknown level or format strings fall
// back to the defaults rather than failing: a daemon with a typo'd
// log flag should come up loud, not crash or come up silent.
func New(opts Options) *slog.Logger {
	sink := opts.Sink
	if sink == nil {
		sink = os.Stderr
	}
	h := &slog.HandlerOptions{Level: ParseLevel(opts.Level)}
	var handler slog.Handler
	if strings.EqualFold(opts.Format, "json") {
		handler = slog.NewJSONHandler(sink, h)
	} else {
		handler = slog.NewTextHandler(sink, h)
	}
	return slog.New(handler)
}

// ParseLevel maps a level name to its slog.Level, case-insensitively;
// unknown names (including "") map to Info.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// Nop returns a logger that discards everything — the default for
// embedded engines that configured no logging. It still pays the
// slog front-end cost only when a record's level passes Enabled,
// which never happens.
func Nop() *slog.Logger { return slog.New(nopHandler{}) }

// nopHandler discards all records. (slog.DiscardHandler exists only
// since Go 1.24; this keeps the module buildable on older releases.)
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
