package telemetry

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestTextLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	log := New(Options{Level: "warn", Sink: &buf})
	log.Info("hidden")
	log.Warn("shown", "k", "v")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info leaked through warn level:\n%s", out)
	}
	if !strings.Contains(out, "shown") || !strings.Contains(out, "k=v") {
		t.Errorf("warn record missing:\n%s", out)
	}
}

func TestJSONLogger(t *testing.T) {
	var buf bytes.Buffer
	log := New(Options{Format: "json", Level: "debug", Sink: &buf})
	log.Debug("event", slog.String("table", "t"), slog.Int64("rows", 7))
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "event" || rec["table"] != "t" || rec["rows"] != float64(7) {
		t.Errorf("record = %v", rec)
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "DEBUG": slog.LevelDebug,
		"info": slog.LevelInfo, "": slog.LevelInfo, "bogus": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestDefaultsFallBack(t *testing.T) {
	var buf bytes.Buffer
	// Unknown format falls back to text rather than failing.
	log := New(Options{Format: "xml", Sink: &buf})
	log.Info("msg")
	if !strings.Contains(buf.String(), "msg=") && !strings.Contains(buf.String(), `msg`) {
		t.Errorf("fallback text output: %s", buf.String())
	}
}

func TestNopDiscardsAndIsDisabled(t *testing.T) {
	log := Nop()
	if log.Enabled(nil, slog.LevelError) { //nolint:staticcheck // nil ctx fine for slog
		t.Error("nop logger claims to be enabled")
	}
	log.Error("dropped", "k", "v") // must not panic
	_ = log.With("a", 1).WithGroup("g")
}
