package table

import (
	"fmt"
	"testing"

	"tierdb/internal/histogram"
	"tierdb/internal/schema"
	"tierdb/internal/value"
)

// benchSchema builds an all-Int64 schema of the given width.
func benchSchema(b *testing.B, cols int) *schema.Schema {
	b.Helper()
	fields := make([]schema.Field, cols)
	for c := range fields {
		fields[c] = schema.Field{Name: fmt.Sprintf("c%d", c), Type: value.Int64}
	}
	s, err := schema.New(fields)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchStatsRows builds rows where column c has ~rows/(c+1) distinct
// values, so the hash sets in the old pass stay large.
func benchStatsRows(rows, cols int) [][]value.Value {
	out := make([][]value.Value, rows)
	for r := range out {
		row := make([]value.Value, cols)
		for c := range row {
			row[c] = value.NewInt(int64(r % (rows/(c+1) + 1)))
		}
		out[r] = row
	}
	return out
}

// oldDistinctPass is the seed's replaced statistics pass, verbatim in
// structure: per column, gather the values column-major, insert every
// one into a fresh map[value.Value]struct{} for the distinct count —
// O(columns x rows) map operations — and then build the histogram the
// executor needs anyway. Kept here (not in production code) as the
// benchmark baseline.
func oldDistinctPass(b *testing.B, s *schema.Schema, rows [][]value.Value) []int {
	distinct := make([]int, s.Len())
	colVals := make([]value.Value, len(rows))
	for col := 0; col < s.Len(); col++ {
		seen := make(map[value.Value]struct{}, 64)
		for r := range rows {
			colVals[r] = rows[r][col]
			seen[rows[r][col]] = struct{}{}
		}
		distinct[col] = len(seen)
		if _, err := histogram.Build(s.Field(col).Type, colVals, histogramBuckets); err != nil {
			b.Fatal(err)
		}
	}
	return distinct
}

// newDistinctPass mirrors buildMainParts' statistics half: one
// transposition, then per-column histogram builds whose sorted pass
// yields the distinct count as a side effect (plus the histogram the
// executor wants anyway).
func newDistinctPass(b *testing.B, s *schema.Schema, rows [][]value.Value) []int {
	colVals := make([][]value.Value, s.Len())
	for c := range colVals {
		colVals[c] = make([]value.Value, len(rows))
	}
	for r, row := range rows {
		for c, v := range row {
			colVals[c][r] = v
		}
	}
	distinct := make([]int, s.Len())
	for col := 0; col < s.Len(); col++ {
		h, err := histogram.Build(s.Field(col).Type, colVals[col], histogramBuckets)
		if err != nil {
			b.Fatal(err)
		}
		distinct[col] = h.DistinctCount()
	}
	return distinct
}

// BenchmarkColumnStats compares the merge rebuild's statistics pass
// before and after the rework. Both variants end up with histograms
// and distinct counts for every column; the old one additionally paid
// columns x rows hash-map inserts to get counts the histogram's sorted
// pass now yields for free.
func BenchmarkColumnStats(b *testing.B) {
	const rows, cols = 20_000, 8
	s := benchSchema(b, cols)
	data := benchStatsRows(rows, cols)
	b.Run("old_hashset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if d := oldDistinctPass(b, s, data); d[0] == 0 {
				b.Fatal("zero distinct")
			}
		}
	})
	b.Run("new_histogram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if d := newDistinctPass(b, s, data); d[0] == 0 {
				b.Fatal("zero distinct")
			}
		}
	})
}

// BenchmarkMergeRebuild measures the online merge's shadow-rebuild core
// (MRCs + SSCG + statistics for a tiered layout) at a fixed row count.
func BenchmarkMergeRebuild(b *testing.B) {
	const rows = 10_000
	tbl, err := New("bench", testSchema(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	data := make([][]value.Value, rows)
	for i := range data {
		data[i] = row(int64(i), int64(i%10), fmt.Sprintf("n%d", i%4))
	}
	if err := tbl.BulkAppend(data); err != nil {
		b.Fatal(err)
	}
	layout := []bool{true, false, false}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts, err := tbl.buildMainParts(layout, data)
		if err != nil {
			b.Fatal(err)
		}
		if parts.group != nil {
			if err := parts.group.Free(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
