package table

import (
	"errors"
	"fmt"
	"testing"

	"tierdb/internal/amm"
	"tierdb/internal/storage"
	"tierdb/internal/value"
)

// faultyTable builds a tiered table over a fault-injecting store.
func faultyTable(t *testing.T, cache bool) (*Table, *storage.FaultStore) {
	t.Helper()
	fs := storage.NewFaultStore(storage.NewMemStore())
	opts := Options{Store: fs}
	if cache {
		c, err := amm.New(8, fs)
		if err != nil {
			t.Fatal(err)
		}
		opts.Cache = c
	}
	tbl, err := New("faulty", testSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]value.Value, 500)
	for i := range rows {
		rows[i] = row(int64(i), int64(i%10), fmt.Sprintf("n%d", i%4))
	}
	if err := tbl.BulkAppend(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.ApplyLayout([]bool{true, false, false}); err != nil {
		t.Fatal(err)
	}
	return tbl, fs
}

func TestReadFaultSurfacesFromGetTuple(t *testing.T) {
	tbl, fs := faultyTable(t, false)
	fs.FailReadAfter(1, false)
	if _, err := tbl.GetTuple(7); !errors.Is(err, storage.ErrInjected) {
		t.Errorf("GetTuple under fault: %v, want ErrInjected", err)
	}
	// Transient fault: the next access succeeds and data is intact.
	got, err := tbl.GetTuple(7)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Int() != 7 || got[1].Int() != 7 {
		t.Errorf("data corrupted after fault: %v", got)
	}
	if fs.ReadsFailed() != 1 {
		t.Errorf("ReadsFailed = %d", fs.ReadsFailed())
	}
}

func TestReadFaultThroughCacheDoesNotPoison(t *testing.T) {
	tbl, fs := faultyTable(t, true)
	fs.FailReadAfter(1, false)
	if _, err := tbl.GetTuple(3); !errors.Is(err, storage.ErrInjected) {
		t.Errorf("cached GetTuple under fault: %v", err)
	}
	// The failed fault-in must not leave a poisoned cache frame; the
	// retry faults the page in properly.
	got, err := tbl.GetTuple(3)
	if err != nil {
		t.Fatal(err)
	}
	if got[2].Str() != "n3" {
		t.Errorf("cache poisoned: %v", got)
	}
}

func TestWriteFaultFailsMergeCleanly(t *testing.T) {
	tbl, fs := faultyTable(t, false)
	mgr := tbl.Manager()
	tx := mgr.Begin()
	if err := tbl.Insert(tx, row(9999, 1, "n1")); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	fs.FailWriteAfter(1, false)
	if err := tbl.Merge(); !errors.Is(err, storage.ErrInjected) {
		t.Errorf("merge under write fault: %v, want ErrInjected", err)
	}
	// The table remains queryable: either the old state (merge failed
	// atomically before install) is visible, including the delta row.
	if got := tbl.VisibleCount(); got != 501 {
		t.Errorf("visible rows after failed merge = %d, want 501", got)
	}
	// A later merge succeeds.
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	if got := tbl.VisibleCount(); got != 501 {
		t.Errorf("visible rows after recovery merge = %d, want 501", got)
	}
}
