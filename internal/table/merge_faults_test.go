package table

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"tierdb/internal/amm"
	"tierdb/internal/metrics"
	"tierdb/internal/storage"
	"tierdb/internal/value"
)

// faultyMergeTable builds a tiered table over a fault-injecting store
// wrapped around an accountable MemStore, with metrics on, loaded and
// tiered so a merge rebuilds a real SSCG.
func faultyMergeTable(t *testing.T, frames int) (*Table, *storage.FaultStore, *storage.MemStore, *amm.Cache, *metrics.Registry) {
	t.Helper()
	ms := storage.NewMemStore()
	fs := storage.NewFaultStore(ms)
	reg := metrics.NewRegistry()
	opts := Options{Store: fs, Registry: reg}
	var cache *amm.Cache
	if frames > 0 {
		var err error
		cache, err = amm.New(frames, fs)
		if err != nil {
			t.Fatal(err)
		}
		opts.Cache = cache
	}
	tbl, err := New("faulty", testSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]value.Value, 600)
	for i := range rows {
		rows[i] = row(int64(i), int64(i%10), fmt.Sprintf("n%d", i%4))
	}
	if err := tbl.BulkAppend(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.ApplyLayout([]bool{true, false, false}); err != nil {
		t.Fatal(err)
	}
	return tbl, fs, ms, cache, reg
}

// livePages returns the store's currently allocated (non-freed) pages.
func livePages(ms *storage.MemStore) int64 {
	return ms.NumPages() - int64(ms.FreeCount())
}

// TestOnlineMergeTransientWriteFaultMidRebuild injects a transient write
// fault into the shadow SSCG build. The merge must fail without
// installing anything: the old main keeps serving, the frozen delta is
// retained for retry, no shadow pages leak, and the retried merge folds
// everything.
func TestOnlineMergeTransientWriteFaultMidRebuild(t *testing.T) {
	tbl, fs, ms, _, reg := faultyMergeTable(t, 0)
	mgr := tbl.Manager()
	tx := mgr.Begin()
	if err := tbl.Insert(tx, row(9999, 1, "n1")); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	before := livePages(ms)
	goroutines := runtime.NumGoroutine()

	// Fail the 3rd page write: the shadow build dies with earlier pages
	// already allocated, exercising the partial-build cleanup.
	fs.FailWriteAfter(3, false)
	if err := tbl.Merge(); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("merge under write fault: %v, want ErrInjected", err)
	}
	if got := reg.Counter("merge.failures").Value(); got != 1 {
		t.Errorf("merge.failures = %d, want 1", got)
	}
	if got := livePages(ms); got != before {
		t.Errorf("live pages after failed rebuild = %d, want %d (shadow pages leaked)", got, before)
	}
	if tbl.Frozen() == nil {
		t.Error("frozen delta not retained after failed merge")
	}
	if tbl.Merging() {
		t.Error("still marked merging after failed merge")
	}
	if got := tbl.VisibleCount(); got != 601 {
		t.Errorf("VisibleCount after failed merge = %d, want 601", got)
	}

	// Writers keep going between the failure and the retry.
	tx = mgr.Begin()
	if err := tbl.Insert(tx, row(10000, 2, "n2")); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}

	// The retry reuses the frozen delta and folds everything.
	if err := tbl.Merge(); err != nil {
		t.Fatalf("retry merge: %v", err)
	}
	if err := tbl.Merge(); err != nil { // fold the second insert too
		t.Fatalf("second retry merge: %v", err)
	}
	if got := tbl.VisibleCount(); got != 602 {
		t.Errorf("VisibleCount after recovery = %d, want 602", got)
	}
	if got := tbl.DeltaRows(); got != 0 {
		t.Errorf("DeltaRows after recovery = %d, want 0", got)
	}
	// The old main's pages were retired at the swap; live pages track
	// exactly one main partition's SSCG.
	if got := livePages(ms); got != before {
		t.Errorf("live pages after recovery = %d, want %d (retired pages leaked)", got, before)
	}
	// The merge ran on the calling goroutine; nothing may linger.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > goroutines+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > goroutines+1 {
		t.Errorf("goroutines grew from %d to %d across failed+retried merges", goroutines, got)
	}
}

// TestOnlineMergeStickyWriteFaultRecovery keeps the write path failing
// across several merge attempts (a dead device), then heals it. Every
// attempt must fail cleanly and leak nothing; the first attempt after
// healing succeeds.
func TestOnlineMergeStickyWriteFaultRecovery(t *testing.T) {
	tbl, fs, ms, cache, reg := faultyMergeTable(t, 16)
	mgr := tbl.Manager()
	tx := mgr.Begin()
	if err := tbl.Insert(tx, row(7777, 3, "n3")); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	before := livePages(ms)

	fs.FailWriteAfter(2, true)
	for attempt := 0; attempt < 3; attempt++ {
		if err := tbl.Merge(); !errors.Is(err, storage.ErrInjected) {
			t.Fatalf("attempt %d under sticky fault: %v, want ErrInjected", attempt, err)
		}
		if got := livePages(ms); got != before {
			t.Fatalf("attempt %d leaked pages: live %d, want %d", attempt, got, before)
		}
		if got := tbl.VisibleCount(); got != 601 {
			t.Fatalf("attempt %d: VisibleCount = %d, want 601", attempt, got)
		}
	}
	if got := reg.Counter("merge.failures").Value(); got != 3 {
		t.Errorf("merge.failures = %d, want 3", got)
	}
	if cache.PinnedFrames() != 0 {
		t.Errorf("PinnedFrames = %d after failed merges, want 0", cache.PinnedFrames())
	}

	fs.Disarm()
	if err := tbl.Merge(); err != nil {
		t.Fatalf("merge after heal: %v", err)
	}
	if got := tbl.VisibleCount(); got != 601 {
		t.Errorf("VisibleCount after heal = %d, want 601", got)
	}
	if got := tbl.DeltaRows(); got != 0 {
		t.Errorf("DeltaRows after heal = %d, want 0", got)
	}
	if got := livePages(ms); got != before {
		t.Errorf("live pages after heal = %d, want %d", got, before)
	}
	if cache.PinnedFrames() != 0 {
		t.Errorf("PinnedFrames = %d after heal, want 0", cache.PinnedFrames())
	}
	// The healed table is fully readable through the cache.
	got, err := tbl.GetTuple(findByKey(t, tbl, 7777))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Int() != 7777 || got[2].Str() != "n3" {
		t.Errorf("tuple after heal = %v", got)
	}
}

// TestOnlineMergeReadFaultMidRebuildKeepsServing injects a transient
// read fault into the rebuild's reads of the old SSCG, while a pinned
// reader holds the old epoch across the failure.
func TestOnlineMergeReadFaultMidRebuildKeepsServing(t *testing.T) {
	tbl, fs, ms, _, _ := faultyMergeTable(t, 0)
	mgr := tbl.Manager()
	tx := mgr.Begin()
	if err := tbl.Insert(tx, row(8888, 4, "n0")); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	before := livePages(ms)

	v := tbl.Pin() // survives the failed merge and the successful one
	fs.FailReadAfter(1, false)
	if err := tbl.Merge(); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("merge under read fault: %v, want ErrInjected", err)
	}
	if got := tbl.VisibleCount(); got != 601 {
		t.Errorf("VisibleCount after failed merge = %d, want 601", got)
	}
	if err := tbl.Merge(); err != nil {
		t.Fatalf("retry merge: %v", err)
	}
	// The pinned view still reads the retired main: its epoch keeps the
	// old pages allocated until release.
	tuple, err := v.GetTuple(0)
	if err != nil {
		t.Fatalf("pinned view read after swap: %v", err)
	}
	if tuple[0].Int() != 0 {
		t.Errorf("pinned view tuple = %v", tuple)
	}
	if got := livePages(ms); got <= before-int64(tbl.MainRows()) {
		t.Errorf("retired pages freed while still pinned: live %d", got)
	}
	v.Release()
	// Last reference gone: the retired SSCG's pages return to the
	// freelist, leaving exactly the new main's pages live.
	if got := livePages(ms); got != before {
		t.Errorf("live pages after release = %d, want %d", got, before)
	}
	if got := tbl.VisibleCount(); got != 601 {
		t.Errorf("VisibleCount after recovery = %d, want 601", got)
	}
}
