package table

import (
	"fmt"
	"sort"
	"strings"

	"tierdb/internal/bptree"
	"tierdb/internal/delta"
	"tierdb/internal/keyenc"
	"tierdb/internal/mvcc"
	"tierdb/internal/value"
)

// compositeKeyName canonicalizes a column list for the index registry.
func compositeKeyName(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return strings.Join(parts, ",")
}

// CreateCompositeIndex builds a DRAM-resident multi-column index over
// the main partition (cf. Hyrise's composite keys, paper Section IV).
// Keys are order-preserving byte encodings of the column tuple, stored
// in an ordinary B+-tree; like single-column indexes, composite indexes
// are never evicted and are rebuilt by Merge.
func (t *Table) CreateCompositeIndex(cols []int) error {
	if len(cols) < 2 {
		return fmt.Errorf("table %s: composite index needs >= 2 columns, got %d", t.name, len(cols))
	}
	seen := make(map[int]bool, len(cols))
	for _, c := range cols {
		if c < 0 || c >= t.schema.Len() {
			return fmt.Errorf("table %s: composite index column %d out of range", t.name, c)
		}
		if seen[c] {
			return fmt.Errorf("table %s: composite index repeats column %d", t.name, c)
		}
		seen[c] = true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.buildCompositeLocked(cols)
}

func (t *Table) buildCompositeLocked(cols []int) error {
	tree := bptree.New(value.String)
	key := make([]value.Value, len(cols))
	for row := 0; row < t.mainRows; row++ {
		for i, c := range cols {
			v, err := t.mainValueLocked(row, c)
			if err != nil {
				return fmt.Errorf("table %s: build composite index: %w", t.name, err)
			}
			key[i] = v
		}
		enc, err := keyenc.EncodeString(key)
		if err != nil {
			return fmt.Errorf("table %s: encode composite key: %w", t.name, err)
		}
		tree.Insert(value.NewString(enc), uint32(row))
	}
	// Copy-on-write: pinned views may alias the current map.
	composites := make(map[string]compositeIndex, len(t.composites)+1)
	for k, v := range t.composites {
		composites[k] = v
	}
	composites[compositeKeyName(cols)] = compositeIndex{
		cols: append([]int(nil), cols...),
		tree: tree,
	}
	t.composites = composites
	return nil
}

// compositeIndex bundles the indexed columns with their tree.
type compositeIndex struct {
	cols []int
	tree *bptree.Tree
}

// LookupComposite returns the rows whose column tuple equals key, using
// the composite index over cols (which must have been created). It runs
// against a pinned View, so a concurrent merge swap cannot tear the
// lookup.
func (t *Table) LookupComposite(cols []int, key []value.Value, snapshot uint64, self uint64) ([]RowID, error) {
	v := t.Pin()
	defer v.Release()
	return v.LookupComposite(cols, key, snapshot, self)
}

// LookupComposite resolves a composite-key lookup in the View: the main
// partition via the composite B+-tree, then the frozen (if any) and
// active deltas by probing their first-column trees and verifying the
// remaining columns.
func (v *View) LookupComposite(cols []int, key []value.Value, snapshot mvcc.Timestamp, self mvcc.TxID) ([]RowID, error) {
	if len(key) != len(cols) {
		return nil, fmt.Errorf("table %s: composite key has %d values for %d columns", v.name, len(key), len(cols))
	}
	idx, ok := v.composites[compositeKeyName(cols)]
	if !ok {
		return nil, fmt.Errorf("table %s: no composite index on columns %v", v.name, cols)
	}
	enc, err := keyenc.EncodeString(key)
	if err != nil {
		return nil, err
	}
	var out []RowID
	for _, pos := range idx.tree.Lookup(value.NewString(enc)) {
		if v.mainVersions.Visible(int(pos), snapshot, self) {
			out = append(out, RowID(pos))
		}
	}
	probe := func(d *delta.Partition, base uint64, bound int) error {
		cand, err := d.ScanEqual(cols[0], key[0], snapshot, self, nil)
		if err != nil {
			return err
		}
		for _, pos := range cand {
			if int(pos) >= bound {
				continue // appended after the pin; see View.ActiveRows
			}
			match := true
			for i := 1; i < len(cols); i++ {
				val, err := d.Get(int(pos), cols[i])
				if err != nil {
					return err
				}
				if !val.Equal(key[i]) {
					match = false
					break
				}
			}
			if match {
				out = append(out, base+uint64(pos))
			}
		}
		return nil
	}
	base := uint64(v.mainRows)
	if v.frozen != nil {
		if err := probe(v.frozen, base, v.frozenRows); err != nil {
			return nil, err
		}
		base += uint64(v.frozenRows)
	}
	if err := probe(v.active, base, v.activeRows); err != nil {
		return nil, err
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// CompositeIndexes lists the column sets with composite indexes.
func (t *Table) CompositeIndexes() [][]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([][]int, 0, len(t.composites))
	for _, idx := range t.composites {
		out = append(out, append([]int(nil), idx.cols...))
	}
	sort.Slice(out, func(a, b int) bool {
		return compositeKeyName(out[a]) < compositeKeyName(out[b])
	})
	return out
}
