package table

import (
	"fmt"

	"tierdb/internal/delta"
	"tierdb/internal/mvcc"
	"tierdb/internal/value"
)

// BulkAppendAt loads rows outside any transaction, visible from the
// explicit commit timestamp ts on. The durable bulk-load path allocates
// ts via mvcc.Manager.BulkCommit (which logs the rows first); recovery
// uses it to restore checkpoint snapshots at their snapshot timestamp.
func (t *Table) BulkAppendAt(rows [][]value.Value, ts mvcc.Timestamp) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for i, row := range rows {
		if _, err := t.delta.Append(row, ts); err != nil {
			return fmt.Errorf("table %s: bulk append row %d: %w", t.name, i, err)
		}
	}
	return nil
}

// ReplayInsert re-applies a logged insert during recovery: the row
// lands in the active delta, visible from its original commit
// timestamp.
func (t *Table) ReplayInsert(row []value.Value, ts mvcc.Timestamp) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if _, err := t.delta.Append(row, ts); err != nil {
		return fmt.Errorf("table %s: replay insert: %w", t.name, err)
	}
	return nil
}

// ReplayDelete re-applies a logged delete during recovery. Deletes are
// logged by row content, not position — row ids are positional and do
// not survive a merge — so replay stamps the delete timestamp onto the
// first committed-live row with identical content. With duplicate rows
// any one of them is the multiset-correct choice. Recovery is
// single-threaded, so the scan-then-stamp is not racy.
func (t *Table) ReplayDelete(tuple []value.Value, ts mvcc.Timestamp) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for row := 0; row < t.mainRows; row++ {
		st := t.mainVersions.State(row)
		if !liveCommitted(st) {
			continue
		}
		got, err := t.tupleLocked(RowID(row))
		if err != nil {
			return fmt.Errorf("table %s: replay delete: %w", t.name, err)
		}
		if rowsEqual(got, tuple) {
			t.mainVersions.SetEnd(row, ts)
			return nil
		}
	}
	for _, p := range []*delta.Partition{t.frozen, t.delta} {
		if p == nil {
			continue
		}
		vers := p.Versions()
		for pos := 0; pos < p.Rows(); pos++ {
			st := vers.State(pos)
			if !liveCommitted(st) {
				continue
			}
			got, err := p.GetRow(pos)
			if err != nil {
				return fmt.Errorf("table %s: replay delete: %w", t.name, err)
			}
			if rowsEqual(got, tuple) {
				vers.SetEnd(pos, ts)
				return nil
			}
		}
	}
	return fmt.Errorf("table %s: replay delete: no live row matches %v", t.name, tuple)
}

func liveCommitted(st mvcc.RowState) bool {
	return st.Begin != 0 && st.Begin != mvcc.Infinity && st.End == mvcc.Infinity && !st.Pending
}

func rowsEqual(a, b []value.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type() != b[i].Type() || !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
