package table

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"tierdb/internal/schema"
	"tierdb/internal/value"
)

// ---------------------------------------------------------------------------
// Property: an online merge running under concurrent readers and writers
// leaves the table with exactly the content the blocking reference merge
// (MergeOffline) produces from the same committed operations.
// ---------------------------------------------------------------------------

// randomSchema draws a 2-5 column schema; column 0 is always an Int64
// logical key the ops address rows by.
func randomSchema(rng *rand.Rand) *schema.Schema {
	n := 2 + rng.Intn(4)
	fields := []schema.Field{{Name: "k", Type: value.Int64}}
	for i := 1; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			fields = append(fields, schema.Field{Name: fmt.Sprintf("c%d", i), Type: value.Int64})
		case 1:
			fields = append(fields, schema.Field{Name: fmt.Sprintf("c%d", i), Type: value.Float64})
		default:
			fields = append(fields, schema.Field{Name: fmt.Sprintf("c%d", i), Type: value.String, Width: 8})
		}
	}
	return schema.MustNew(fields)
}

// randomTuple builds a row for s with the given key in column 0.
func randomTuple(rng *rand.Rand, s *schema.Schema, key int64) []value.Value {
	row := make([]value.Value, s.Len())
	row[0] = value.NewInt(key)
	for c := 1; c < s.Len(); c++ {
		switch s.Field(c).Type {
		case value.Int64:
			row[c] = value.NewInt(int64(rng.Intn(1000)))
		case value.Float64:
			row[c] = value.NewFloat(float64(rng.Intn(1000)) / 8)
		default:
			row[c] = value.NewString(fmt.Sprintf("s%03d", rng.Intn(500)))
		}
	}
	return row
}

// mergeOp is one logical committed operation, addressed by key so it can
// be replayed identically against independent tables.
type mergeOp struct {
	kind  int // 0 insert, 1 delete, 2 update
	key   int64
	tuple []value.Value // insert/update payload
}

// randomOps draws nOps operations over the live-key set, mutating it.
// insertOnly restricts to inserts (safe to race with a merge swap, which
// renumbers RowIDs).
func randomOps(rng *rand.Rand, s *schema.Schema, live map[int64]bool, next *int64, nOps int, insertOnly bool) []mergeOp {
	ops := make([]mergeOp, 0, nOps)
	for i := 0; i < nOps; i++ {
		kind := 0
		if !insertOnly && len(live) > 0 {
			kind = rng.Intn(3)
		}
		switch kind {
		case 0:
			key := *next
			*next++
			live[key] = true
			ops = append(ops, mergeOp{kind: 0, key: key, tuple: randomTuple(rng, s, key)})
		default:
			keys := make([]int64, 0, len(live))
			for k := range live {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			key := keys[rng.Intn(len(keys))]
			if kind == 1 {
				delete(live, key)
				ops = append(ops, mergeOp{kind: 1, key: key})
			} else {
				ops = append(ops, mergeOp{kind: 2, key: key, tuple: randomTuple(rng, s, key)})
			}
		}
	}
	return ops
}

// findByKey resolves a logical key to the RowID of its visible row at
// the latest commit (there is at most one: ops never insert a live
// duplicate).
func findByKey(tb testing.TB, tbl *Table, key int64) RowID {
	tb.Helper()
	v := tbl.Pin()
	defer v.Release()
	snap := tbl.Manager().LastCommit()
	total := v.MainRows() + v.FrozenRows() + v.ActiveRows()
	for id := 0; id < total; id++ {
		if !v.Visible(RowID(id), snap, 0) {
			continue
		}
		tuple, err := v.GetTuple(RowID(id))
		if err != nil {
			tb.Fatalf("GetTuple(%d): %v", id, err)
		}
		if tuple[0].Int() == key {
			return RowID(id)
		}
	}
	tb.Fatalf("key %d not found", key)
	return 0
}

// applyOps commits each op in its own transaction.
func applyOps(tb testing.TB, tbl *Table, ops []mergeOp) {
	tb.Helper()
	mgr := tbl.Manager()
	for _, op := range ops {
		tx := mgr.Begin()
		var err error
		switch op.kind {
		case 0:
			err = tbl.Insert(tx, op.tuple)
		case 1:
			err = tbl.Delete(tx, findByKey(tb, tbl, op.key))
		default:
			err = tbl.Update(tx, findByKey(tb, tbl, op.key), op.tuple)
		}
		if err != nil {
			tb.Fatalf("op %+v: %v", op, err)
		}
		if _, err := mgr.Commit(tx); err != nil {
			tb.Fatalf("commit op %+v: %v", op, err)
		}
	}
}

// tableContent returns the sorted visible tuples at the latest commit,
// rendered as strings — the canonical form the equivalence property
// compares.
func tableContent(tb testing.TB, tbl *Table) []string {
	tb.Helper()
	v := tbl.Pin()
	defer v.Release()
	snap := tbl.Manager().LastCommit()
	total := v.MainRows() + v.FrozenRows() + v.ActiveRows()
	var out []string
	for id := 0; id < total; id++ {
		if !v.Visible(RowID(id), snap, 0) {
			continue
		}
		tuple, err := v.GetTuple(RowID(id))
		if err != nil {
			tb.Fatalf("GetTuple(%d): %v", id, err)
		}
		out = append(out, fmt.Sprint(tuple))
	}
	sort.Strings(out)
	return out
}

func contentEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func newPropertyTable(tb testing.TB, name string, s *schema.Schema) *Table {
	tb.Helper()
	tbl, err := New(name, s, Options{})
	if err != nil {
		tb.Fatal(err)
	}
	return tbl
}

// TestOnlineMergeEquivalenceProperty replays randomized committed
// workloads against two independent tables: one merges online while the
// operations (and background readers) run concurrently, the other
// applies the identical operations sequentially and merges with the
// blocking reference implementation. The visible contents must be
// identical. Trials rotate through three overlap modes:
//
//	mode 0 — no hooks: inserts race freely with the whole merge,
//	         including the swap;
//	mode 1 — the swap is gated until mixed inserts/deletes/updates have
//	         committed mid-rebuild, forcing the swap's delete-replay and
//	         straggler re-basing to reconcile all of them;
//	mode 2 — the rebuild is gated after the freeze while mixed ops
//	         commit against main + frozen + active, then insert-only ops
//	         race the rebuild and swap.
func TestOnlineMergeEquivalenceProperty(t *testing.T) {
	trials := 210
	if testing.Short() {
		trials = 25
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%03d", trial), func(t *testing.T) {
			runEquivalenceTrial(t, trial)
		})
	}
}

func runEquivalenceTrial(t *testing.T, trial int) {
	rng := rand.New(rand.NewSource(int64(trial)*7919 + 17))
	s := randomSchema(rng)
	onl := newPropertyTable(t, "onl", s)
	ref := newPropertyTable(t, "ref", s)

	// Seed both tables with the same bulk rows and fold them into main.
	live := make(map[int64]bool)
	next := int64(0)
	nSeed := 20 + rng.Intn(60)
	seed := make([][]value.Value, nSeed)
	for i := range seed {
		seed[i] = randomTuple(rng, s, next)
		live[next] = true
		next++
	}
	for _, tbl := range []*Table{onl, ref} {
		if err := tbl.BulkAppend(seed); err != nil {
			t.Fatal(err)
		}
	}
	layout := make([]bool, s.Len())
	for c := range layout {
		layout[c] = rng.Intn(2) == 0
	}
	if err := onl.ApplyLayout(layout); err != nil {
		t.Fatal(err)
	}
	if err := ref.ApplyLayout(layout); err != nil {
		t.Fatal(err)
	}
	if rng.Intn(2) == 0 {
		if err := onl.CreateIndex(0); err != nil {
			t.Fatal(err)
		}
		if err := ref.CreateIndex(0); err != nil {
			t.Fatal(err)
		}
	}

	// Pre-merge ops, identical and sequential on both tables.
	pre := randomOps(rng, s, live, &next, 5+rng.Intn(15), false)
	applyOps(t, onl, pre)
	applyOps(t, ref, pre)

	// Background readers hammer the online table across the merge.
	stopReaders := make(chan struct{})
	readerErr := make(chan error, 4)
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				v := onl.Pin()
				snap := onl.Manager().LastCommit()
				total := v.MainRows() + v.FrozenRows() + v.ActiveRows()
				for id := 0; id < total; id++ {
					if !v.Visible(RowID(id), snap, 0) {
						continue
					}
					if _, err := v.GetTuple(RowID(id)); err != nil {
						v.Release()
						select {
						case readerErr <- err:
						default:
						}
						return
					}
				}
				v.Release()
			}
		}()
	}

	mode := trial % 3
	mergeDone := make(chan error, 1)
	switch mode {
	case 0:
		concurrent := randomOps(rng, s, live, &next, 10+rng.Intn(20), true)
		go func() { mergeDone <- onl.Merge() }()
		applyOps(t, onl, concurrent)
		if err := <-mergeDone; err != nil {
			t.Fatalf("online merge: %v", err)
		}
		applyOps(t, ref, concurrent)
	case 1:
		gate := make(chan struct{})
		onl.hookBeforeSwap = func() { <-gate }
		mixed := randomOps(rng, s, live, &next, 10+rng.Intn(20), false)
		go func() { mergeDone <- onl.Merge() }()
		// RowIDs stay stable until the gated swap, so deletes and
		// updates address rows safely while the rebuild runs.
		applyOps(t, onl, mixed)
		close(gate)
		if err := <-mergeDone; err != nil {
			t.Fatalf("online merge (gated swap): %v", err)
		}
		onl.hookBeforeSwap = nil
		applyOps(t, ref, mixed)
	default:
		frozen := make(chan struct{})
		resume := make(chan struct{})
		onl.hookAfterFreeze = func() { close(frozen); <-resume }
		mixed := randomOps(rng, s, live, &next, 5+rng.Intn(10), false)
		racing := randomOps(rng, s, live, &next, 5+rng.Intn(10), true)
		go func() { mergeDone <- onl.Merge() }()
		<-frozen
		// Mixed ops land on main + frozen + active while the rebuild
		// has not started; then insert-only ops race rebuild and swap.
		applyOps(t, onl, mixed)
		close(resume)
		applyOps(t, onl, racing)
		if err := <-mergeDone; err != nil {
			t.Fatalf("online merge (gated freeze): %v", err)
		}
		onl.hookAfterFreeze = nil
		applyOps(t, ref, mixed)
		applyOps(t, ref, racing)
	}
	close(stopReaders)
	readers.Wait()
	select {
	case err := <-readerErr:
		t.Fatalf("concurrent reader: %v", err)
	default:
	}

	if err := ref.MergeOffline(); err != nil {
		t.Fatalf("reference merge: %v", err)
	}
	got, want := tableContent(t, onl), tableContent(t, ref)
	if !contentEqual(got, want) {
		t.Fatalf("mode %d: online content (%d rows) != reference (%d rows)\nonline:    %v\nreference: %v",
			mode, len(got), len(want), got, want)
	}
	if n := len(got); onl.VisibleCount() != n || ref.VisibleCount() != n || n != len(live) {
		t.Fatalf("counts diverge: online %d, reference %d, content %d, live keys %d",
			onl.VisibleCount(), ref.VisibleCount(), n, len(live))
	}

	// A follow-up merge folds whatever the first one re-based or raced;
	// content must be invariant under it.
	if err := onl.Merge(); err != nil {
		t.Fatalf("follow-up merge: %v", err)
	}
	if after := tableContent(t, onl); !contentEqual(after, want) {
		t.Fatalf("content changed across follow-up merge:\nbefore: %v\nafter:  %v", want, after)
	}
	if d := onl.DeltaRows(); d != 0 {
		t.Fatalf("DeltaRows = %d after quiescent follow-up merge", d)
	}
}
