package table

import (
	"testing"

	"tierdb/internal/mvcc"
	"tierdb/internal/schema"
	"tierdb/internal/value"
)

func replayTestTable(t *testing.T) (*Table, *mvcc.Manager) {
	t.Helper()
	s := schema.MustNew([]schema.Field{
		{Name: "id", Type: value.Int64},
		{Name: "tag", Type: value.String, Width: 8},
	})
	mgr := mvcc.NewManager()
	tbl, err := New("t", s, Options{Manager: mgr})
	if err != nil {
		t.Fatal(err)
	}
	return tbl, mgr
}

func replayRow(id int64, tag string) []value.Value {
	return []value.Value{value.NewInt(id), value.NewString(tag)}
}

func TestBulkAppendAtVisibility(t *testing.T) {
	tbl, mgr := replayTestTable(t)
	if err := tbl.BulkAppendAt([][]value.Value{replayRow(1, "a"), replayRow(2, "b")}, 5); err != nil {
		t.Fatal(err)
	}
	vers := tbl.Delta().Versions()
	if n := vers.LiveAt(4); n != 0 {
		t.Fatalf("rows visible before their commit ts: %d", n)
	}
	if n := vers.LiveAt(5); n != 2 {
		t.Fatalf("rows at ts 5: %d, want 2", n)
	}
	mgr.AdvanceTo(5)
	if n := tbl.VisibleCount(); n != 2 {
		t.Fatalf("visible count %d, want 2", n)
	}
}

func TestReplayInsertDeleteAcrossMerge(t *testing.T) {
	tbl, mgr := replayTestTable(t)
	if err := tbl.ReplayInsert(replayRow(1, "a"), 2); err != nil {
		t.Fatal(err)
	}
	if err := tbl.ReplayInsert(replayRow(2, "b"), 3); err != nil {
		t.Fatal(err)
	}
	mgr.AdvanceTo(3)
	// Merge moves the rows into the main partition: positions change,
	// but content-addressed delete replay must still find row 1.
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.ReplayInsert(replayRow(3, "c"), 4); err != nil {
		t.Fatal(err)
	}
	mgr.AdvanceTo(4)
	if err := tbl.ReplayDelete(replayRow(1, "a"), 5); err != nil {
		t.Fatal(err)
	}
	if err := tbl.ReplayDelete(replayRow(3, "c"), 6); err != nil {
		t.Fatal(err)
	}
	mgr.AdvanceTo(6)
	if n := tbl.VisibleCount(); n != 1 {
		t.Fatalf("visible count after replayed deletes: %d, want 1", n)
	}
	// The survivor is row 2.
	found := false
	for id := RowID(0); id < RowID(tbl.MainRows()+tbl.DeltaRows()); id++ {
		if tbl.Visible(id, 6, 0) {
			tuple, err := tbl.GetTuple(id)
			if err != nil {
				t.Fatal(err)
			}
			if !rowsEqual(tuple, replayRow(2, "b")) {
				t.Fatalf("survivor = %v, want row 2", tuple)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no visible row found")
	}
	// Deleting a row that no longer exists is a replay error.
	if err := tbl.ReplayDelete(replayRow(1, "a"), 7); err == nil {
		t.Fatal("replaying a delete with no matching live row must fail")
	}
}

func TestReplayDeleteDuplicateContent(t *testing.T) {
	tbl, mgr := replayTestTable(t)
	// Two identical rows: deleting one must leave exactly one live.
	if err := tbl.BulkAppendAt([][]value.Value{replayRow(7, "x"), replayRow(7, "x")}, 2); err != nil {
		t.Fatal(err)
	}
	mgr.AdvanceTo(2)
	if err := tbl.ReplayDelete(replayRow(7, "x"), 3); err != nil {
		t.Fatal(err)
	}
	mgr.AdvanceTo(3)
	if n := tbl.VisibleCount(); n != 1 {
		t.Fatalf("visible count %d, want 1 (multiset delete)", n)
	}
}
