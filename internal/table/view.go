package table

import (
	"sync/atomic"

	"tierdb/internal/bptree"
	"tierdb/internal/column"
	"tierdb/internal/delta"
	"tierdb/internal/mvcc"
	"tierdb/internal/schema"
	"tierdb/internal/sscg"
	"tierdb/internal/value"
)

// epoch ties the lifetime of a main partition's SSCG pages to the
// readers that may still touch them. The table holds one reference for
// the current epoch; every pinned View holds another. When a merge swap
// retires an epoch the table's reference drops, and the last reader to
// release its View returns the group's pages to the store freelist.
type epoch struct {
	refs  atomic.Int64
	group *sscg.Group
}

func newEpoch(g *sscg.Group) *epoch {
	e := &epoch{group: g}
	e.refs.Store(1)
	return e
}

// release drops one reference and frees the group's pages when the last
// reference drains. Freeing is freelist metadata plus cache
// invalidation; an error would indicate a double free and is ignored
// here because release runs on reader unwind paths with no caller to
// report to (the storage layer's ErrPageFreed guard catches any
// use-after-free in tests).
func (e *epoch) release() {
	if e.refs.Add(-1) == 0 && e.group != nil {
		_ = e.group.Free()
	}
}

// View is a pinned, immutable snapshot of the table's structure: the
// main partition (MRCs, SSCG, indexes, version store), the frozen delta
// of an in-flight merge (nil otherwise) and the active delta. A query
// pins one View and runs entirely against it, so an online merge
// swapping the main partition mid-query can never tear the query's
// reads. All referenced containers are replaced wholesale by writers,
// never mutated in place, which is what makes the aliasing safe.
//
// The active delta is the one container shared with writers: it grows
// while the View is pinned. activeRows bounds the View to the rows that
// physically existed at pin time — later appends include merge-swap
// re-basing of frozen rows, which a View that still sees the frozen
// delta must not count twice.
type View struct {
	name         string
	schema       *schema.Schema
	mainRows     int
	mrcs         []*column.MRC
	group        *sscg.Group
	groupIdx     []int
	indexes      map[int]*bptree.Tree
	composites   map[string]compositeIndex
	mainVersions *mvcc.Versions
	frozen       *delta.Partition // nil when no merge is in flight
	frozenRows   int
	active       *delta.Partition
	activeRows   int
	ep           *epoch
}

// Pin captures the table's current structure into a View and takes a
// reference on its reclamation epoch. Callers must Release the View
// exactly once.
func (t *Table) Pin() *View {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.epoch.refs.Add(1)
	return &View{
		name:         t.name,
		schema:       t.schema,
		mainRows:     t.mainRows,
		mrcs:         t.mrcs,
		group:        t.group,
		groupIdx:     t.groupIdx,
		indexes:      t.indexes,
		composites:   t.composites,
		mainVersions: t.mainVersions,
		frozen:       t.frozen,
		frozenRows:   t.frozenRows,
		active:       t.delta,
		activeRows:   t.delta.Rows(),
		ep:           t.epoch,
	}
}

// Release drops the View's epoch reference; the View must not be used
// afterwards. The last release of a retired epoch frees its SSCG pages.
func (v *View) Release() {
	if v.ep != nil {
		v.ep.release()
		v.ep = nil
	}
}

// MainRows returns the number of main-partition rows in the snapshot.
func (v *View) MainRows() int { return v.mainRows }

// MRC returns the snapshot's memory-resident column, or nil.
func (v *View) MRC(col int) *column.MRC {
	if col < 0 || col >= len(v.mrcs) {
		return nil
	}
	return v.mrcs[col]
}

// Group returns the snapshot's SSCG, or nil if every column is an MRC.
func (v *View) Group() *sscg.Group { return v.group }

// GroupField returns the SSCG field index of a schema column, or -1.
func (v *View) GroupField(col int) int {
	if col < 0 || col >= len(v.groupIdx) {
		return -1
	}
	return v.groupIdx[col]
}

// Index returns the snapshot's main-partition index for col, or nil.
func (v *View) Index(col int) *bptree.Tree { return v.indexes[col] }

// MainVersions returns the snapshot's main-partition version store.
func (v *View) MainVersions() *mvcc.Versions { return v.mainVersions }

// Frozen returns the frozen delta of an in-flight merge, or nil.
func (v *View) Frozen() *delta.Partition { return v.frozen }

// FrozenRows returns the physical row count of the frozen delta (0
// without one).
func (v *View) FrozenRows() int { return v.frozenRows }

// Active returns the active delta partition. Scans must respect
// ActiveRows: the partition keeps growing after the pin.
func (v *View) Active() *delta.Partition { return v.active }

// ActiveRows bounds the View to the active-delta rows that existed at
// pin time. Rows appended later are either invisible at any snapshot
// the View serves or re-based frozen rows the View already sees through
// Frozen.
func (v *View) ActiveRows() int { return v.activeRows }

// Visible reports whether row id is visible at (snapshot, self) in this
// View.
func (v *View) Visible(id RowID, snapshot mvcc.Timestamp, self mvcc.TxID) bool {
	if id < uint64(v.mainRows) {
		return v.mainVersions.Visible(int(id), snapshot, self)
	}
	pos := int(id - uint64(v.mainRows))
	if v.frozen != nil {
		if pos < v.frozenRows {
			return v.frozen.Versions().Visible(pos, snapshot, self)
		}
		pos -= v.frozenRows
	}
	if pos >= v.activeRows {
		return false
	}
	return v.active.Versions().Visible(pos, snapshot, self)
}

// GetValue materializes one cell of the View (no visibility check).
func (v *View) GetValue(id RowID, col int) (value.Value, error) {
	if id < uint64(v.mainRows) {
		if mrc := v.MRC(col); mrc != nil {
			return mrc.Get(int(id))
		}
		return v.group.ReadField(int(id), v.groupIdx[col])
	}
	pos := int(id - uint64(v.mainRows))
	if v.frozen != nil {
		if pos < v.frozenRows {
			return v.frozen.Get(pos, col)
		}
		pos -= v.frozenRows
	}
	return v.active.Get(pos, col)
}

// GetTuple reconstructs a full row of the View.
func (v *View) GetTuple(id RowID) ([]value.Value, error) {
	if id >= uint64(v.mainRows) {
		pos := int(id - uint64(v.mainRows))
		if v.frozen != nil {
			if pos < v.frozenRows {
				return v.frozen.GetRow(pos)
			}
			pos -= v.frozenRows
		}
		return v.active.GetRow(pos)
	}
	out := make([]value.Value, v.schema.Len())
	if v.group != nil {
		groupRow, err := v.group.ReadRow(int(id))
		if err != nil {
			return nil, err
		}
		for col, gi := range v.groupIdx {
			if gi >= 0 {
				out[col] = groupRow[gi]
			}
		}
	}
	for col, mrc := range v.mrcs {
		if mrc != nil {
			val, err := mrc.Get(int(id))
			if err != nil {
				return nil, err
			}
			out[col] = val
		}
	}
	return out, nil
}
