// Package table composes the storage substrates into the paper's tiered
// table architecture (Section II): a read-optimized main partition whose
// attributes are either Memory-Resident Columns (MRCs) or grouped into a
// row-oriented Secondary-Storage Column Group (SSCG), plus a
// DRAM-resident write-optimized delta partition. Data modifications are
// insert-only into the delta; the delta is periodically merged into the
// main partition. The column layout — which attributes are MRCs — is
// decided by the column selection model and applied during merge.
package table

import (
	"fmt"
	"sync"

	"tierdb/internal/amm"
	"tierdb/internal/bptree"
	"tierdb/internal/column"
	"tierdb/internal/delta"
	"tierdb/internal/histogram"
	"tierdb/internal/metrics"
	"tierdb/internal/mvcc"
	"tierdb/internal/schema"
	"tierdb/internal/sscg"
	"tierdb/internal/storage"
	"tierdb/internal/value"
)

// RowID addresses a visible row: main-partition rows occupy
// [0, mainRows), delta rows follow at mainRows+localPos. RowIDs are
// stable between merges only.
type RowID = uint64

// Options configures a table's storage environment.
type Options struct {
	// Store is the secondary storage device backing SSCGs (typically a
	// storage.TimedStore in simulations). Defaults to an in-memory
	// store.
	Store storage.Store
	// Cache is an optional AMM page cache in front of Store.
	Cache *amm.Cache
	// Manager supplies transactions; defaults to a fresh manager.
	Manager *mvcc.Manager
	// Registry receives the table's instruments (delta counters,
	// table.merges); nil disables them. The table keeps the registry so
	// it can re-observe the fresh delta partition created by each merge.
	Registry *metrics.Registry
}

// Table is a tiered HTAP table.
//
// Concurrency protocol: t.mu guards the structural pointers below.
// Every container they reference (MRC slices, index maps, version
// stores, delta partitions) is replaced wholesale on change, never
// mutated in place, so a pinned View (see Pin) may keep reading retired
// containers lock-free. Write intents and provisional inserts are only
// created while holding the read lock, which is what lets the merge
// swap treat "no provisional state" as stable under the write lock.
type Table struct {
	mu       sync.RWMutex
	name     string
	schema   *schema.Schema
	mgr      *mvcc.Manager
	store    storage.Store
	cache    *amm.Cache
	registry *metrics.Registry

	// Merge instruments (no-ops when the registry is nil).
	cMerges     *metrics.Counter
	cSwaps      *metrics.Counter
	cMergeRows  *metrics.Counter
	cMergeFails *metrics.Counter
	cStragglers *metrics.Counter
	hMergeNs    *metrics.Histogram
	gActiveRows *metrics.Gauge
	gFrozenRows *metrics.Gauge

	// Main partition (immutable between merges).
	mainRows     int
	layout       []bool // layout[i]: column i is an MRC
	mrcs         []*column.MRC
	group        *sscg.Group
	groupIdx     []int // schema column -> field index within group, -1 if MRC
	mainVersions *mvcc.Versions

	delta      *delta.Partition          // active delta: all new writes land here
	frozen     *delta.Partition          // merge input while a merge is in flight (nil otherwise)
	frozenRows int                       // physical frozen rows, fixed at freeze
	merging    bool                      // an online merge is between freeze and swap
	epoch      *epoch                    // reclamation epoch owning the current SSCG's pages
	indexes    map[int]*bptree.Tree      // main-partition indexes, always DRAM-resident
	composites map[string]compositeIndex // multi-column indexes by canonical column list
	distinct   []int                     // per-column distinct counts of the main partition
	hists      []*histogram.Histogram    // per-column equi-depth histograms (may hold nils)
	observed   []selEstimator            // per-column observed-selectivity EWMAs (lock-free)

	// Test-only synchronization points of the online merge; set before
	// any merge starts, never under load.
	hookAfterFreeze func()
	hookBeforeSwap  func()
}

// New creates an empty table whose columns all start as MRCs.
func New(name string, s *schema.Schema, opts Options) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("table: empty name")
	}
	if s == nil {
		return nil, fmt.Errorf("table: nil schema")
	}
	if opts.Store == nil {
		opts.Store = storage.NewMemStore()
	}
	if opts.Manager == nil {
		opts.Manager = mvcc.NewManager()
	}
	layout := make([]bool, s.Len())
	for i := range layout {
		layout[i] = true
	}
	t := &Table{
		name:         name,
		schema:       s,
		mgr:          opts.Manager,
		store:        opts.Store,
		cache:        opts.Cache,
		registry:     opts.Registry,
		cMerges:      opts.Registry.Counter("table.merges"),
		cSwaps:       opts.Registry.Counter("merge.swaps"),
		cMergeRows:   opts.Registry.Counter("merge.rows"),
		cMergeFails:  opts.Registry.Counter("merge.failures"),
		cStragglers:  opts.Registry.Counter("merge.stragglers"),
		hMergeNs:     opts.Registry.Histogram("merge.ns", metrics.IOLatencyBuckets()),
		gActiveRows:  opts.Registry.Gauge("delta.active_rows"),
		gFrozenRows:  opts.Registry.Gauge("delta.frozen_rows"),
		layout:       layout,
		mrcs:         make([]*column.MRC, s.Len()),
		groupIdx:     make([]int, s.Len()),
		mainVersions: mvcc.NewVersions(),
		delta:        delta.New(s),
		epoch:        newEpoch(nil),
		indexes:      make(map[int]*bptree.Tree),
		distinct:     make([]int, s.Len()),
		observed:     make([]selEstimator, s.Len()),
	}
	t.delta.Observe(t.registry)
	for i := range t.groupIdx {
		t.groupIdx[i] = -1
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *schema.Schema { return t.schema }

// Manager returns the table's transaction manager.
func (t *Table) Manager() *mvcc.Manager { return t.mgr }

// Store returns the secondary storage device backing the table's SSCGs
// (immutable after New). The parallel executor inspects it to fork
// per-worker timed views for virtual-clock accounting.
func (t *Table) Store() storage.Store { return t.store }

// Delta exposes the active delta partition — the one receiving new
// writes. While a merge is in flight the frozen delta (Frozen) holds
// additional unmerged rows; consistent readers should Pin a View
// instead of combining these accessors.
func (t *Table) Delta() *delta.Partition {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.delta
}

// Frozen exposes the frozen delta of an in-flight merge, or nil.
func (t *Table) Frozen() *delta.Partition {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.frozen
}

// Layout returns a copy of the current column layout (true = MRC).
func (t *Table) Layout() []bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]bool, len(t.layout))
	copy(out, t.layout)
	return out
}

// MainRows returns the number of main-partition rows (including
// deleted-but-not-merged ones).
func (t *Table) MainRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.mainRows
}

// DeltaRows returns the number of physical unmerged rows: the active
// delta plus, while a merge is in flight, the frozen one.
func (t *Table) DeltaRows() int {
	t.mu.RLock()
	active, frozenRows := t.delta, t.frozenRows
	t.mu.RUnlock()
	return active.Rows() + frozenRows
}

// ActiveDeltaRows returns the physical row count of the active delta
// only — the growth since the last freeze, which is what merge
// scheduling thresholds watch.
func (t *Table) ActiveDeltaRows() int {
	return t.Delta().Rows()
}

// DeltaBytes returns the DRAM footprint of the unmerged deltas.
func (t *Table) DeltaBytes() int64 {
	t.mu.RLock()
	active, frozen := t.delta, t.frozen
	t.mu.RUnlock()
	b := active.Bytes()
	if frozen != nil {
		b += frozen.Bytes()
	}
	return b
}

// MainVersions exposes MVCC state of the main partition.
func (t *Table) MainVersions() *mvcc.Versions {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.mainVersions
}

// Group returns the SSCG of the main partition, or nil if every column
// is an MRC.
func (t *Table) Group() *sscg.Group {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.group
}

// MRC returns the memory-resident column for a schema column, or nil if
// it is SSCG-placed.
func (t *Table) MRC(col int) *column.MRC {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if col < 0 || col >= len(t.mrcs) {
		return nil
	}
	return t.mrcs[col]
}

// GroupField returns the SSCG field index of a schema column, or -1.
func (t *Table) GroupField(col int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if col < 0 || col >= len(t.groupIdx) {
		return -1
	}
	return t.groupIdx[col]
}

// Insert appends a row through tx (insert-only, into the active
// delta). The read lock spans the provisional append, so a merge
// freeze can never split the row from its version entry.
func (t *Table) Insert(tx *mvcc.Tx, row []value.Value) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, err := t.delta.Insert(tx, row)
	return err
}

// BulkAppend loads rows outside any transaction; they are immediately
// visible. Rows land in the delta; call Merge to move them into the
// main partition under the current layout.
func (t *Table) BulkAppend(rows [][]value.Value) error {
	ts := t.mgr.LastCommit()
	t.mu.RLock()
	defer t.mu.RUnlock()
	for i, row := range rows {
		if _, err := t.delta.Append(row, ts); err != nil {
			return fmt.Errorf("table %s: bulk append row %d: %w", t.name, i, err)
		}
	}
	return nil
}

// Delete marks the row deleted through tx, routing the id across main,
// frozen and active partitions. The commit callbacks capture the
// version store resolved here, not the table: intents registered
// against a retiring partition must resolve against that partition (the
// merge swap waits for them before reconciling).
func (t *Table) Delete(tx *mvcc.Tx, id RowID) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < uint64(t.mainRows) {
		vers := t.mainVersions
		row := int(id)
		if err := vers.MarkDelete(row, tx.ID()); err != nil {
			return err
		}
		tx.OnCommit(func(ts mvcc.Timestamp) { vers.CommitDelete(row, ts) })
		tx.OnAbort(func() { vers.AbortDelete(row, tx.ID()) })
		return nil
	}
	pos := int(id - uint64(t.mainRows))
	if t.frozen != nil {
		if pos < t.frozenRows {
			return t.frozen.Delete(tx, pos)
		}
		pos -= t.frozenRows
	}
	return t.delta.Delete(tx, pos)
}

// Update implements the insert-only update: delete the old version and
// insert the new one in the same transaction.
func (t *Table) Update(tx *mvcc.Tx, id RowID, row []value.Value) error {
	if err := t.Delete(tx, id); err != nil {
		return err
	}
	return t.Insert(tx, row)
}

// Visible reports whether a row id is visible at (snapshot, self).
func (t *Table) Visible(id RowID, snapshot mvcc.Timestamp, self mvcc.TxID) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < uint64(t.mainRows) {
		return t.mainVersions.Visible(int(id), snapshot, self)
	}
	pos := int(id - uint64(t.mainRows))
	if t.frozen != nil {
		if pos < t.frozenRows {
			return t.frozen.Versions().Visible(pos, snapshot, self)
		}
		pos -= t.frozenRows
	}
	return t.delta.Versions().Visible(pos, snapshot, self)
}

// GetValue materializes one cell of a visible row (no visibility check).
func (t *Table) GetValue(id RowID, col int) (value.Value, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.getValueLocked(id, col)
}

func (t *Table) getValueLocked(id RowID, col int) (value.Value, error) {
	if col < 0 || col >= t.schema.Len() {
		return value.Value{}, fmt.Errorf("table %s: column %d out of range", t.name, col)
	}
	if id < uint64(t.mainRows) {
		if mrc := t.mrcs[col]; mrc != nil {
			return mrc.Get(int(id))
		}
		return t.group.ReadField(int(id), t.groupIdx[col])
	}
	pos := int(id - uint64(t.mainRows))
	if t.frozen != nil {
		if pos < t.frozenRows {
			return t.frozen.Get(pos, col)
		}
		pos -= t.frozenRows
	}
	return t.delta.Get(pos, col)
}

// GetTuple reconstructs a full row: MRC attributes decode from their
// dictionaries (two dependent DRAM accesses each); SSCG attributes
// arrive with a single page access for the whole group.
func (t *Table) GetTuple(id RowID) ([]value.Value, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id >= uint64(t.mainRows) {
		pos := int(id - uint64(t.mainRows))
		if t.frozen != nil {
			if pos < t.frozenRows {
				return t.frozen.GetRow(pos)
			}
			pos -= t.frozenRows
		}
		return t.delta.GetRow(pos)
	}
	out := make([]value.Value, t.schema.Len())
	if t.group != nil {
		groupRow, err := t.group.ReadRow(int(id))
		if err != nil {
			return nil, err
		}
		for col, gi := range t.groupIdx {
			if gi >= 0 {
				out[col] = groupRow[gi]
			}
		}
	}
	for col, mrc := range t.mrcs {
		if mrc != nil {
			v, err := mrc.Get(int(id))
			if err != nil {
				return nil, err
			}
			out[col] = v
		}
	}
	return out, nil
}

// CreateIndex builds a DRAM-resident B+-tree index over the main
// partition of the given column (indexes are never evicted, paper
// Section IV). It is rebuilt by Merge.
func (t *Table) CreateIndex(col int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.buildIndexLocked(col)
}

func (t *Table) buildIndexLocked(col int) error {
	if col < 0 || col >= t.schema.Len() {
		return fmt.Errorf("table %s: index column %d out of range", t.name, col)
	}
	tree := bptree.New(t.schema.Field(col).Type)
	for row := 0; row < t.mainRows; row++ {
		v, err := t.mainValueLocked(row, col)
		if err != nil {
			return fmt.Errorf("table %s: build index on %q: %w", t.name, t.schema.Field(col).Name, err)
		}
		tree.Insert(v, uint32(row))
	}
	// Copy-on-write: pinned views may alias the current map.
	indexes := make(map[int]*bptree.Tree, len(t.indexes)+1)
	for k, v := range t.indexes {
		indexes[k] = v
	}
	indexes[col] = tree
	t.indexes = indexes
	return nil
}

// mainValueLocked reads one main-partition cell; caller holds t.mu.
func (t *Table) mainValueLocked(row, col int) (value.Value, error) {
	if mrc := t.mrcs[col]; mrc != nil {
		return mrc.Get(row)
	}
	return t.group.ReadField(row, t.groupIdx[col])
}

// Index returns the main-partition index for col, or nil.
func (t *Table) Index(col int) *bptree.Tree {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.indexes[col]
}

// tupleLocked reconstructs a main-partition tuple; caller holds t.mu.
func (t *Table) tupleLocked(id RowID) ([]value.Value, error) {
	out := make([]value.Value, t.schema.Len())
	if t.group != nil {
		groupRow, err := t.group.ReadRow(int(id))
		if err != nil {
			return nil, err
		}
		for col, gi := range t.groupIdx {
			if gi >= 0 {
				out[col] = groupRow[gi]
			}
		}
	}
	for col, mrc := range t.mrcs {
		if mrc != nil {
			v, err := mrc.Get(int(id))
			if err != nil {
				return nil, err
			}
			out[col] = v
		}
	}
	return out, nil
}

// VisibleCount returns the number of rows visible at the latest
// snapshot.
func (t *Table) VisibleCount() int {
	snapshot := t.mgr.LastCommit()
	t.mu.RLock()
	mainRows, vers, frozen, active := t.mainRows, t.mainVersions, t.frozen, t.delta
	t.mu.RUnlock()
	n := 0
	for row := 0; row < mainRows; row++ {
		if vers.Visible(row, snapshot, 0) {
			n++
		}
	}
	if frozen != nil {
		n += len(frozen.VisibleRows(snapshot, 0))
	}
	return n + len(active.VisibleRows(snapshot, 0))
}

// MemoryBytes returns the table's DRAM footprint: MRCs, deltas, MVCC
// vectors (indexes excluded for parity with the paper's budget metric,
// which covers attribute data).
func (t *Table) MemoryBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var b int64
	for _, mrc := range t.mrcs {
		if mrc != nil {
			b += mrc.Bytes()
		}
	}
	if t.frozen != nil {
		b += t.frozen.Bytes()
	}
	return b + t.delta.Bytes() + t.mainVersions.Bytes()
}

// SecondaryBytes returns the SSCG footprint on secondary storage.
func (t *Table) SecondaryBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.group == nil {
		return 0
	}
	return t.group.Bytes()
}

// DistinctCount estimates the number of distinct values in a column of
// the main partition (dictionary size for MRCs, exact count for SSCG
// columns via the delta's statistics when available).
func (t *Table) DistinctCount(col int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if col < 0 || col >= t.schema.Len() {
		return 0
	}
	n := t.distinct[col]
	if d := t.delta.DistinctCount(col); d > n {
		n = d
	}
	if t.frozen != nil {
		if d := t.frozen.DistinctCount(col); d > n {
			n = d
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Selectivity returns the paper's selectivity estimate 1/n for the
// column (Section II-B).
func (t *Table) Selectivity(col int) float64 {
	return 1 / float64(t.DistinctCount(col))
}

// histogramBuckets is the equi-depth histogram resolution.
const histogramBuckets = 64

// Histogram returns the column's equi-depth histogram, or nil if the
// main partition is empty.
func (t *Table) Histogram(col int) *histogram.Histogram {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if col < 0 || col >= len(t.hists) {
		return nil
	}
	return t.hists[col]
}

// RangeSelectivity estimates the fraction of rows with lo <= col <= hi
// using the column's histogram, falling back to the equi-predicate
// estimate when no histogram exists.
func (t *Table) RangeSelectivity(col int, lo, hi value.Value) float64 {
	if h := t.Histogram(col); h != nil {
		return h.RangeSelectivity(lo, hi)
	}
	return t.Selectivity(col)
}

// ColumnBytes estimates the DRAM footprint column col would occupy as
// an MRC: exact for resident columns, estimated from row count and slot
// width for SSCG-placed ones. This is the size a_i the column selection
// model budgets with.
func (t *Table) ColumnBytes(col int) int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if col < 0 || col >= t.schema.Len() {
		return 0
	}
	if mrc := t.mrcs[col]; mrc != nil {
		return mrc.Bytes()
	}
	return int64(t.mainRows) * int64(t.schema.Field(col).SlotWidth())
}
