// Package table composes the storage substrates into the paper's tiered
// table architecture (Section II): a read-optimized main partition whose
// attributes are either Memory-Resident Columns (MRCs) or grouped into a
// row-oriented Secondary-Storage Column Group (SSCG), plus a
// DRAM-resident write-optimized delta partition. Data modifications are
// insert-only into the delta; the delta is periodically merged into the
// main partition. The column layout — which attributes are MRCs — is
// decided by the column selection model and applied during merge.
package table

import (
	"fmt"
	"sync"

	"tierdb/internal/amm"
	"tierdb/internal/bptree"
	"tierdb/internal/column"
	"tierdb/internal/delta"
	"tierdb/internal/histogram"
	"tierdb/internal/metrics"
	"tierdb/internal/mvcc"
	"tierdb/internal/schema"
	"tierdb/internal/sscg"
	"tierdb/internal/storage"
	"tierdb/internal/value"
)

// RowID addresses a visible row: main-partition rows occupy
// [0, mainRows), delta rows follow at mainRows+localPos. RowIDs are
// stable between merges only.
type RowID = uint64

// Options configures a table's storage environment.
type Options struct {
	// Store is the secondary storage device backing SSCGs (typically a
	// storage.TimedStore in simulations). Defaults to an in-memory
	// store.
	Store storage.Store
	// Cache is an optional AMM page cache in front of Store.
	Cache *amm.Cache
	// Manager supplies transactions; defaults to a fresh manager.
	Manager *mvcc.Manager
	// Registry receives the table's instruments (delta counters,
	// table.merges); nil disables them. The table keeps the registry so
	// it can re-observe the fresh delta partition created by each merge.
	Registry *metrics.Registry
}

// Table is a tiered HTAP table.
type Table struct {
	mu       sync.RWMutex
	name     string
	schema   *schema.Schema
	mgr      *mvcc.Manager
	store    storage.Store
	cache    *amm.Cache
	registry *metrics.Registry
	cMerges  *metrics.Counter

	// Main partition (immutable between merges).
	mainRows     int
	layout       []bool // layout[i]: column i is an MRC
	mrcs         []*column.MRC
	group        *sscg.Group
	groupIdx     []int // schema column -> field index within group, -1 if MRC
	mainVersions *mvcc.Versions

	delta      *delta.Partition
	indexes    map[int]*bptree.Tree      // main-partition indexes, always DRAM-resident
	composites map[string]compositeIndex // multi-column indexes by canonical column list
	distinct   []int                     // per-column distinct counts of the main partition
	hists      []*histogram.Histogram    // per-column equi-depth histograms (may hold nils)
}

// New creates an empty table whose columns all start as MRCs.
func New(name string, s *schema.Schema, opts Options) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("table: empty name")
	}
	if s == nil {
		return nil, fmt.Errorf("table: nil schema")
	}
	if opts.Store == nil {
		opts.Store = storage.NewMemStore()
	}
	if opts.Manager == nil {
		opts.Manager = mvcc.NewManager()
	}
	layout := make([]bool, s.Len())
	for i := range layout {
		layout[i] = true
	}
	t := &Table{
		name:         name,
		schema:       s,
		mgr:          opts.Manager,
		store:        opts.Store,
		cache:        opts.Cache,
		registry:     opts.Registry,
		cMerges:      opts.Registry.Counter("table.merges"),
		layout:       layout,
		mrcs:         make([]*column.MRC, s.Len()),
		groupIdx:     make([]int, s.Len()),
		mainVersions: mvcc.NewVersions(),
		delta:        delta.New(s),
		indexes:      make(map[int]*bptree.Tree),
		distinct:     make([]int, s.Len()),
	}
	t.delta.Observe(t.registry)
	for i := range t.groupIdx {
		t.groupIdx[i] = -1
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *schema.Schema { return t.schema }

// Manager returns the table's transaction manager.
func (t *Table) Manager() *mvcc.Manager { return t.mgr }

// Store returns the secondary storage device backing the table's SSCGs
// (immutable after New). The parallel executor inspects it to fork
// per-worker timed views for virtual-clock accounting.
func (t *Table) Store() storage.Store { return t.store }

// Delta exposes the delta partition (read-mostly; used by tests and the
// executor).
func (t *Table) Delta() *delta.Partition { return t.delta }

// Layout returns a copy of the current column layout (true = MRC).
func (t *Table) Layout() []bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]bool, len(t.layout))
	copy(out, t.layout)
	return out
}

// MainRows returns the number of main-partition rows (including
// deleted-but-not-merged ones).
func (t *Table) MainRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.mainRows
}

// DeltaRows returns the number of physical delta rows.
func (t *Table) DeltaRows() int { return t.delta.Rows() }

// MainVersions exposes MVCC state of the main partition.
func (t *Table) MainVersions() *mvcc.Versions { return t.mainVersions }

// Group returns the SSCG of the main partition, or nil if every column
// is an MRC.
func (t *Table) Group() *sscg.Group {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.group
}

// MRC returns the memory-resident column for a schema column, or nil if
// it is SSCG-placed.
func (t *Table) MRC(col int) *column.MRC {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if col < 0 || col >= len(t.mrcs) {
		return nil
	}
	return t.mrcs[col]
}

// GroupField returns the SSCG field index of a schema column, or -1.
func (t *Table) GroupField(col int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if col < 0 || col >= len(t.groupIdx) {
		return -1
	}
	return t.groupIdx[col]
}

// Insert appends a row through tx (insert-only, into the delta).
func (t *Table) Insert(tx *mvcc.Tx, row []value.Value) error {
	_, err := t.delta.Insert(tx, row)
	return err
}

// BulkAppend loads rows outside any transaction; they are immediately
// visible. Rows land in the delta; call Merge to move them into the
// main partition under the current layout.
func (t *Table) BulkAppend(rows [][]value.Value) error {
	ts := t.mgr.LastCommit()
	for i, row := range rows {
		if _, err := t.delta.Append(row, ts); err != nil {
			return fmt.Errorf("table %s: bulk append row %d: %w", t.name, i, err)
		}
	}
	return nil
}

// Delete marks the row deleted through tx.
func (t *Table) Delete(tx *mvcc.Tx, id RowID) error {
	t.mu.RLock()
	mainRows := t.mainRows
	t.mu.RUnlock()
	if id < uint64(mainRows) {
		if err := t.mainVersions.MarkDelete(int(id), tx.ID()); err != nil {
			return err
		}
		row := int(id)
		tx.OnCommit(func(ts mvcc.Timestamp) { t.mainVersions.CommitDelete(row, ts) })
		tx.OnAbort(func() { t.mainVersions.AbortDelete(row, tx.ID()) })
		return nil
	}
	return t.delta.Delete(tx, int(id-uint64(mainRows)))
}

// Update implements the insert-only update: delete the old version and
// insert the new one in the same transaction.
func (t *Table) Update(tx *mvcc.Tx, id RowID, row []value.Value) error {
	if err := t.Delete(tx, id); err != nil {
		return err
	}
	return t.Insert(tx, row)
}

// Visible reports whether a row id is visible at (snapshot, self).
func (t *Table) Visible(id RowID, snapshot mvcc.Timestamp, self mvcc.TxID) bool {
	t.mu.RLock()
	mainRows := t.mainRows
	t.mu.RUnlock()
	if id < uint64(mainRows) {
		return t.mainVersions.Visible(int(id), snapshot, self)
	}
	return t.delta.Versions().Visible(int(id-uint64(mainRows)), snapshot, self)
}

// GetValue materializes one cell of a visible row (no visibility check).
func (t *Table) GetValue(id RowID, col int) (value.Value, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.getValueLocked(id, col)
}

func (t *Table) getValueLocked(id RowID, col int) (value.Value, error) {
	if col < 0 || col >= t.schema.Len() {
		return value.Value{}, fmt.Errorf("table %s: column %d out of range", t.name, col)
	}
	if id < uint64(t.mainRows) {
		if mrc := t.mrcs[col]; mrc != nil {
			return mrc.Get(int(id))
		}
		return t.group.ReadField(int(id), t.groupIdx[col])
	}
	return t.delta.Get(int(id-uint64(t.mainRows)), col)
}

// GetTuple reconstructs a full row: MRC attributes decode from their
// dictionaries (two dependent DRAM accesses each); SSCG attributes
// arrive with a single page access for the whole group.
func (t *Table) GetTuple(id RowID) ([]value.Value, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id >= uint64(t.mainRows) {
		return t.delta.GetRow(int(id - uint64(t.mainRows)))
	}
	out := make([]value.Value, t.schema.Len())
	if t.group != nil {
		groupRow, err := t.group.ReadRow(int(id))
		if err != nil {
			return nil, err
		}
		for col, gi := range t.groupIdx {
			if gi >= 0 {
				out[col] = groupRow[gi]
			}
		}
	}
	for col, mrc := range t.mrcs {
		if mrc != nil {
			v, err := mrc.Get(int(id))
			if err != nil {
				return nil, err
			}
			out[col] = v
		}
	}
	return out, nil
}

// CreateIndex builds a DRAM-resident B+-tree index over the main
// partition of the given column (indexes are never evicted, paper
// Section IV). It is rebuilt by Merge.
func (t *Table) CreateIndex(col int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.buildIndexLocked(col)
}

func (t *Table) buildIndexLocked(col int) error {
	if col < 0 || col >= t.schema.Len() {
		return fmt.Errorf("table %s: index column %d out of range", t.name, col)
	}
	tree := bptree.New(t.schema.Field(col).Type)
	for row := 0; row < t.mainRows; row++ {
		v, err := t.getValueLocked(uint64(row), col)
		if err != nil {
			return fmt.Errorf("table %s: build index on %q: %w", t.name, t.schema.Field(col).Name, err)
		}
		tree.Insert(v, uint32(row))
	}
	t.indexes[col] = tree
	return nil
}

// Index returns the main-partition index for col, or nil.
func (t *Table) Index(col int) *bptree.Tree {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.indexes[col]
}

// ApplyLayout sets the column layout and rebuilds the main partition
// accordingly (merging the delta in the same pass). layout[i] = true
// keeps column i as a DRAM-resident MRC; false places it in the SSCG.
func (t *Table) ApplyLayout(layout []bool) error {
	if len(layout) != t.schema.Len() {
		return fmt.Errorf("table %s: layout has %d entries, want %d", t.name, len(layout), t.schema.Len())
	}
	return t.merge(layout)
}

// Merge merges the delta partition into the main partition under the
// current layout. The process is offline in this implementation (the
// paper's merge is asynchronous and non-blocking; here callers schedule
// it between transactions).
func (t *Table) Merge() error {
	return t.merge(t.Layout())
}

func (t *Table) merge(layout []bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()

	snapshot := t.mgr.LastCommit()
	// Collect all visible rows: surviving main rows, then delta rows.
	var rows [][]value.Value
	for row := 0; row < t.mainRows; row++ {
		if !t.mainVersions.Visible(row, snapshot, 0) {
			continue
		}
		tuple, err := t.tupleLocked(uint64(row))
		if err != nil {
			return fmt.Errorf("table %s: merge read main row %d: %w", t.name, row, err)
		}
		rows = append(rows, tuple)
	}
	for _, pos := range t.delta.VisibleRows(snapshot, 0) {
		tuple, err := t.delta.GetRow(pos)
		if err != nil {
			return fmt.Errorf("table %s: merge read delta row %d: %w", t.name, pos, err)
		}
		rows = append(rows, tuple)
	}

	// Column statistics: distinct counts drive equi-predicate
	// selectivity estimates for all columns, including SSCG-placed
	// ones; equi-depth histograms refine range-predicate estimates
	// (paper Section III-A, "distinct counts and histograms when
	// available").
	distinct := make([]int, t.schema.Len())
	hists := make([]*histogram.Histogram, t.schema.Len())
	colVals := make([]value.Value, len(rows))
	for col := 0; col < t.schema.Len(); col++ {
		seen := make(map[value.Value]struct{}, 64)
		for r := range rows {
			colVals[r] = rows[r][col]
			seen[rows[r][col]] = struct{}{}
		}
		distinct[col] = len(seen)
		if len(rows) > 0 {
			h, err := histogram.Build(t.schema.Field(col).Type, colVals, histogramBuckets)
			if err != nil {
				return fmt.Errorf("table %s: build histogram for %q: %w", t.name, t.schema.Field(col).Name, err)
			}
			hists[col] = h
		}
	}

	// Build new MRCs.
	mrcs := make([]*column.MRC, t.schema.Len())
	var groupFields []schema.Field
	var groupCols []int
	groupIdx := make([]int, t.schema.Len())
	for i := range groupIdx {
		groupIdx[i] = -1
	}
	for col := 0; col < t.schema.Len(); col++ {
		f := t.schema.Field(col)
		if layout[col] {
			colVals := make([]value.Value, len(rows))
			for r := range rows {
				colVals[r] = rows[r][col]
			}
			mrc, err := column.Build(f.Name, f.Type, colVals)
			if err != nil {
				return fmt.Errorf("table %s: merge build MRC %q: %w", t.name, f.Name, err)
			}
			mrcs[col] = mrc
		} else {
			groupIdx[col] = len(groupFields)
			groupFields = append(groupFields, f)
			groupCols = append(groupCols, col)
		}
	}

	// Build the SSCG for evicted columns.
	var group *sscg.Group
	if len(groupFields) > 0 {
		groupRows := make([][]value.Value, len(rows))
		for r := range rows {
			gr := make([]value.Value, len(groupCols))
			for gi, col := range groupCols {
				gr[gi] = rows[r][col]
			}
			groupRows[r] = gr
		}
		var err error
		group, err = sscg.Build(groupFields, groupRows, t.store, t.cache)
		if err != nil {
			return fmt.Errorf("table %s: merge build SSCG: %w", t.name, err)
		}
	}

	// Fresh MVCC state: all merged rows are committed & live.
	versions := mvcc.NewVersions()
	for range rows {
		versions.AppendCommitted(snapshot)
	}

	// Install the new main partition and reset the delta.
	t.mainRows = len(rows)
	t.layout = append([]bool(nil), layout...)
	t.mrcs = mrcs
	t.group = group
	t.groupIdx = groupIdx
	t.mainVersions = versions
	t.delta = delta.New(t.schema)
	t.delta.Observe(t.registry) // fresh partition, fresh handles
	t.distinct = distinct
	t.hists = hists
	t.cMerges.Inc()

	// Rebuild indexes over the new main partition.
	for col := range t.indexes {
		if err := t.buildIndexLocked(col); err != nil {
			return err
		}
	}
	for _, idx := range t.composites {
		if err := t.buildCompositeLocked(idx.cols); err != nil {
			return err
		}
	}
	return nil
}

// tupleLocked reconstructs a main-partition tuple; caller holds t.mu.
func (t *Table) tupleLocked(id RowID) ([]value.Value, error) {
	out := make([]value.Value, t.schema.Len())
	if t.group != nil {
		groupRow, err := t.group.ReadRow(int(id))
		if err != nil {
			return nil, err
		}
		for col, gi := range t.groupIdx {
			if gi >= 0 {
				out[col] = groupRow[gi]
			}
		}
	}
	for col, mrc := range t.mrcs {
		if mrc != nil {
			v, err := mrc.Get(int(id))
			if err != nil {
				return nil, err
			}
			out[col] = v
		}
	}
	return out, nil
}

// VisibleCount returns the number of rows visible at the latest
// snapshot.
func (t *Table) VisibleCount() int {
	snapshot := t.mgr.LastCommit()
	t.mu.RLock()
	mainRows := t.mainRows
	t.mu.RUnlock()
	n := 0
	for row := 0; row < mainRows; row++ {
		if t.mainVersions.Visible(row, snapshot, 0) {
			n++
		}
	}
	return n + len(t.delta.VisibleRows(snapshot, 0))
}

// MemoryBytes returns the table's DRAM footprint: MRCs, delta, MVCC
// vectors (indexes excluded for parity with the paper's budget metric,
// which covers attribute data).
func (t *Table) MemoryBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var b int64
	for _, mrc := range t.mrcs {
		if mrc != nil {
			b += mrc.Bytes()
		}
	}
	return b + t.delta.Bytes() + t.mainVersions.Bytes()
}

// SecondaryBytes returns the SSCG footprint on secondary storage.
func (t *Table) SecondaryBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.group == nil {
		return 0
	}
	return t.group.Bytes()
}

// DistinctCount estimates the number of distinct values in a column of
// the main partition (dictionary size for MRCs, exact count for SSCG
// columns via the delta's statistics when available).
func (t *Table) DistinctCount(col int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if col < 0 || col >= t.schema.Len() {
		return 0
	}
	n := t.distinct[col]
	if d := t.delta.DistinctCount(col); d > n {
		n = d
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Selectivity returns the paper's selectivity estimate 1/n for the
// column (Section II-B).
func (t *Table) Selectivity(col int) float64 {
	return 1 / float64(t.DistinctCount(col))
}

// histogramBuckets is the equi-depth histogram resolution.
const histogramBuckets = 64

// Histogram returns the column's equi-depth histogram, or nil if the
// main partition is empty.
func (t *Table) Histogram(col int) *histogram.Histogram {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if col < 0 || col >= len(t.hists) {
		return nil
	}
	return t.hists[col]
}

// RangeSelectivity estimates the fraction of rows with lo <= col <= hi
// using the column's histogram, falling back to the equi-predicate
// estimate when no histogram exists.
func (t *Table) RangeSelectivity(col int, lo, hi value.Value) float64 {
	if h := t.Histogram(col); h != nil {
		return h.RangeSelectivity(lo, hi)
	}
	return t.Selectivity(col)
}

// ColumnBytes estimates the DRAM footprint column col would occupy as
// an MRC: exact for resident columns, estimated from row count and slot
// width for SSCG-placed ones. This is the size a_i the column selection
// model budgets with.
func (t *Table) ColumnBytes(col int) int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if col < 0 || col >= t.schema.Len() {
		return 0
	}
	if mrc := t.mrcs[col]; mrc != nil {
		return mrc.Bytes()
	}
	return int64(t.mainRows) * int64(t.schema.Field(col).SlotWidth())
}
