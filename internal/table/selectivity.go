package table

import (
	"math"
	"sync/atomic"
)

// selEWMAAlpha is the smoothing factor of the observed-selectivity
// estimators: high enough that a workload shift shows up within a few
// dozen queries, low enough that one outlier predicate (an unusually
// wide range) does not swing the estimate.
const selEWMAAlpha = 0.2

// selEstimator is one column's observed-selectivity estimator: an
// exponentially weighted moving average over the qualifying fractions
// the executor actually measured, updated lock-free from any number of
// concurrent queries. The EWMA is stored as float64 bits behind a CAS
// loop; the sample counter tells consumers (the layout advisor) whether
// the estimate has seen enough evidence to outrank the static
// 1/distinct estimate.
type selEstimator struct {
	bits    atomic.Uint64 // math.Float64bits of the EWMA; 0 = no samples yet
	samples atomic.Int64
}

// record folds one observed fraction into the EWMA.
func (s *selEstimator) record(f float64) {
	for {
		old := s.bits.Load()
		var next float64
		if old == 0 { // first sample: positive floats never encode as 0
			next = f
		} else {
			next = (1-selEWMAAlpha)*math.Float64frombits(old) + selEWMAAlpha*f
		}
		if s.bits.CompareAndSwap(old, math.Float64bits(next)) {
			s.samples.Add(1)
			return
		}
	}
}

// value returns the current EWMA and sample count.
func (s *selEstimator) value() (float64, int64) {
	return math.Float64frombits(s.bits.Load()), s.samples.Load()
}

// RecordObservedSelectivity folds one observed qualifying fraction for
// col into the column's EWMA estimator. The executor calls this with
// the per-predicate fraction it measured (rows out / rows in) on both
// the serial and the parallel scan paths; fractions outside (0, 1] are
// clamped so the estimate always remains a valid model selectivity.
// Safe for concurrent use; out-of-range columns are ignored.
func (t *Table) RecordObservedSelectivity(col int, f float64) {
	if col < 0 || col >= len(t.observed) {
		return
	}
	if math.IsNaN(f) || f <= 0 {
		return
	}
	if f > 1 {
		f = 1
	}
	t.observed[col].record(f)
}

// ObservedSelectivity returns the column's observed-selectivity EWMA
// and how many samples back it. Zero samples means no query has
// measured the column yet; consumers should then fall back to the
// static Selectivity estimate.
func (t *Table) ObservedSelectivity(col int) (sel float64, samples int64) {
	if col < 0 || col >= len(t.observed) {
		return 0, 0
	}
	return t.observed[col].value()
}
