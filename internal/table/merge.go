// Online, non-blocking delta merge (paper Section II: "the delta is
// periodically merged into the main partition"; the merge here follows
// SAP HANA's online delta merge). Three phases:
//
//  1. Freeze — under a brief exclusive lock, the active delta becomes
//     the frozen merge input and a fresh active delta opens for writers.
//     The rebuild snapshot is the latest commit timestamp.
//  2. Rebuild — with NO table lock held, a shadow main partition (MRCs,
//     SSCG, version store, statistics, indexes) is built from the old
//     main plus the frozen delta as of the snapshot. Readers and
//     writers proceed against old main + frozen delta + active delta.
//  3. Swap — after the retiring partitions quiesce (no provisional
//     inserts or delete intents), a short exclusive section installs
//     the shadow main, replays deletes that committed during the
//     rebuild, re-bases frozen rows the snapshot missed into the active
//     delta, and retires the old SSCG pages via the epoch protocol.
//
// Row version history is preserved across the swap (mvcc.AppendAt), so
// a transaction holding any open snapshot sees exactly the same rows
// before and after. RowIDs, as documented on the type, are stable
// between merges only.
package table

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"tierdb/internal/bptree"
	"tierdb/internal/column"
	"tierdb/internal/delta"
	"tierdb/internal/histogram"
	"tierdb/internal/keyenc"
	"tierdb/internal/mvcc"
	"tierdb/internal/schema"
	"tierdb/internal/sscg"
	"tierdb/internal/value"
)

// ErrMergeInProgress is returned when a merge is requested while
// another one is between freeze and swap.
var ErrMergeInProgress = errors.New("table: merge already in progress")

// quiesceSpins bounds the optimistic (lock-free) quiescence wait before
// the swap degrades to holding the write lock while the last
// provisional writes resolve.
const quiesceSpins = 4096

// rowSource records where a rebuilt main row was copied from, so the
// swap can replay deletes that committed against the old location while
// the rebuild ran.
type rowSource struct {
	main bool // true: old main partition; false: frozen delta
	pos  int
}

// carryRow is a committed row not folded into the new main whose
// version interval may still matter to an open snapshot.
type carryRow struct {
	tuple      []value.Value
	begin, end mvcc.Timestamp
}

// mergeState is the frozen input of one merge: immutable references to
// the structures the rebuild reads without holding the table lock.
type mergeState struct {
	layout        []bool
	snapshot      mvcc.Timestamp
	mainRows      int
	mrcs          []*column.MRC
	group         *sscg.Group
	groupIdx      []int
	mainVersions  *mvcc.Versions
	frozen        *delta.Partition
	frozenRows    int
	indexCols     []int
	compositeSets [][]int
}

// mainTuple reconstructs one old-main row from the frozen structure
// references (safe off-lock: MRCs and SSCGs are immutable).
func (st *mergeState) mainTuple(pos int, nCols int) ([]value.Value, error) {
	out := make([]value.Value, nCols)
	if st.group != nil {
		groupRow, err := st.group.ReadRow(pos)
		if err != nil {
			return nil, err
		}
		for col, gi := range st.groupIdx {
			if gi >= 0 {
				out[col] = groupRow[gi]
			}
		}
	}
	for col, mrc := range st.mrcs {
		if mrc != nil {
			v, err := mrc.Get(pos)
			if err != nil {
				return nil, err
			}
			out[col] = v
		}
	}
	return out, nil
}

// mainParts is the layout-dependent half of a rebuilt main partition.
type mainParts struct {
	mrcs     []*column.MRC
	group    *sscg.Group
	groupIdx []int
	distinct []int
	hists    []*histogram.Histogram
}

// builtMain is the complete shadow main partition the rebuild produces.
type builtMain struct {
	parts      *mainParts
	rows       int
	versions   *mvcc.Versions
	indexes    map[int]*bptree.Tree
	composites map[string]compositeIndex
	sources    []rowSource
	folded     []bool // frozen positions folded into the new main
	carry      []carryRow
}

// buildMainParts builds MRCs, the SSCG and column statistics for rows
// under layout. Statistics come from a single row-major transposition:
// the per-column value slices feed the equi-depth histograms — whose
// sorted build pass yields the exact distinct count for free — and are
// then reused as MRC build input, replacing the former O(columns x
// rows) hash-set pass per column (see BenchmarkColumnStats).
func (t *Table) buildMainParts(layout []bool, rows [][]value.Value) (*mainParts, error) {
	nCols := t.schema.Len()
	colVals := make([][]value.Value, nCols)
	for c := range colVals {
		colVals[c] = make([]value.Value, len(rows))
	}
	for r, row := range rows {
		for c, v := range row {
			colVals[c][r] = v
		}
	}

	p := &mainParts{
		distinct: make([]int, nCols),
		hists:    make([]*histogram.Histogram, nCols),
		mrcs:     make([]*column.MRC, nCols),
		groupIdx: make([]int, nCols),
	}
	for col := 0; col < nCols; col++ {
		p.groupIdx[col] = -1
		if len(rows) == 0 {
			continue
		}
		h, err := histogram.Build(t.schema.Field(col).Type, colVals[col], histogramBuckets)
		if err != nil {
			return nil, fmt.Errorf("table %s: build histogram for %q: %w", t.name, t.schema.Field(col).Name, err)
		}
		p.hists[col] = h
		p.distinct[col] = h.DistinctCount()
	}

	var groupFields []schema.Field
	var groupCols []int
	for col := 0; col < nCols; col++ {
		f := t.schema.Field(col)
		if layout[col] {
			mrc, err := column.Build(f.Name, f.Type, colVals[col])
			if err != nil {
				return nil, fmt.Errorf("table %s: merge build MRC %q: %w", t.name, f.Name, err)
			}
			p.mrcs[col] = mrc
		} else {
			p.groupIdx[col] = len(groupFields)
			groupFields = append(groupFields, f)
			groupCols = append(groupCols, col)
		}
	}
	if len(groupFields) > 0 {
		groupRows := make([][]value.Value, len(rows))
		for r := range rows {
			gr := make([]value.Value, len(groupCols))
			for gi, col := range groupCols {
				gr[gi] = rows[r][col]
			}
			groupRows[r] = gr
		}
		var err error
		p.group, err = sscg.Build(groupFields, groupRows, t.store, t.cache)
		if err != nil {
			return nil, fmt.Errorf("table %s: merge build SSCG: %w", t.name, err)
		}
	}
	return p, nil
}

// Merge folds the delta into the main partition under the current
// layout. The merge is online: queries and data modifications proceed
// throughout; only the freeze and the final swap take the table lock
// briefly. Concurrent Merge/ApplyLayout calls fail with
// ErrMergeInProgress.
func (t *Table) Merge() error {
	return t.mergeOnline(nil)
}

// ApplyLayout sets the column layout and rebuilds the main partition
// accordingly (merging the delta in the same online pass). layout[i] =
// true keeps column i as a DRAM-resident MRC; false places it in the
// SSCG.
func (t *Table) ApplyLayout(layout []bool) error {
	if len(layout) != t.schema.Len() {
		return fmt.Errorf("table %s: layout has %d entries, want %d", t.name, len(layout), t.schema.Len())
	}
	return t.mergeOnline(append([]bool(nil), layout...))
}

// mergeOnline runs the three-phase online merge. A nil layout keeps the
// current one. On rebuild failure the table keeps serving the old main
// plus both deltas; the frozen delta is retained so a retry folds it.
func (t *Table) mergeOnline(layout []bool) error {
	start := time.Now()
	st, err := t.freezeForMerge(layout)
	if err != nil {
		return err
	}
	if h := t.hookAfterFreeze; h != nil {
		h()
	}
	b, err := t.rebuild(st)
	if err != nil {
		t.mu.Lock()
		t.merging = false
		t.mu.Unlock()
		t.cMergeFails.Inc()
		return err
	}
	if h := t.hookBeforeSwap; h != nil {
		h()
	}
	if err := t.swapMain(st, b); err != nil {
		return err
	}
	t.hMergeNs.Observe(time.Since(start).Nanoseconds())
	return nil
}

// freezeForMerge is phase 1: under a brief exclusive lock, freeze the
// active delta (or reuse the frozen delta a failed merge left behind),
// open a fresh active delta, and capture the rebuild inputs.
func (t *Table) freezeForMerge(layout []bool) (*mergeState, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.merging {
		return nil, ErrMergeInProgress
	}
	if layout == nil {
		layout = append([]bool(nil), t.layout...)
	}
	if t.frozen == nil {
		t.frozen = t.delta
		t.frozen.Freeze()
		t.frozenRows = t.frozen.Rows()
		t.delta = delta.New(t.schema)
		t.delta.Observe(t.registry) // fresh partition, fresh handles
	}
	t.merging = true
	t.gFrozenRows.Set(int64(t.frozenRows))
	t.gActiveRows.Set(int64(t.delta.Rows()))
	st := &mergeState{
		layout:       layout,
		snapshot:     t.mgr.LastCommit(),
		mainRows:     t.mainRows,
		mrcs:         t.mrcs,
		group:        t.group,
		groupIdx:     t.groupIdx,
		mainVersions: t.mainVersions,
		frozen:       t.frozen,
		frozenRows:   t.frozenRows,
	}
	for col := range t.indexes {
		st.indexCols = append(st.indexCols, col)
	}
	sort.Ints(st.indexCols)
	for _, idx := range t.composites {
		st.compositeSets = append(st.compositeSets, append([]int(nil), idx.cols...))
	}
	sort.Slice(st.compositeSets, func(a, b int) bool {
		return compositeKeyName(st.compositeSets[a]) < compositeKeyName(st.compositeSets[b])
	})
	return st, nil
}

// rebuild is phase 2: construct the shadow main partition from the old
// main and the frozen delta as of the snapshot, holding no table lock.
// Visibility at a fixed snapshot is stable under concurrent commits
// (late deletes stamp end > snapshot; late inserts stamp begin >
// snapshot), so the fold set is deterministic.
func (t *Table) rebuild(st *mergeState) (*builtMain, error) {
	nCols := t.schema.Len()
	var rows [][]value.Value
	var sources []rowSource
	var begins []mvcc.Timestamp
	var carry []carryRow
	for pos := 0; pos < st.mainRows; pos++ {
		rs := st.mainVersions.State(pos)
		if rs.Begin == 0 || rs.Begin == mvcc.Infinity {
			continue // never-committed row (not possible in main; defensive)
		}
		if rs.Begin > st.snapshot || rs.End <= st.snapshot {
			// Invisible at the snapshot but committed: carry the version
			// interval so snapshots that still need it survive the swap.
			tuple, err := st.mainTuple(pos, nCols)
			if err != nil {
				return nil, fmt.Errorf("table %s: merge read main row %d: %w", t.name, pos, err)
			}
			carry = append(carry, carryRow{tuple: tuple, begin: rs.Begin, end: rs.End})
			continue
		}
		tuple, err := st.mainTuple(pos, nCols)
		if err != nil {
			return nil, fmt.Errorf("table %s: merge read main row %d: %w", t.name, pos, err)
		}
		rows = append(rows, tuple)
		sources = append(sources, rowSource{main: true, pos: pos})
		begins = append(begins, rs.Begin)
	}
	folded := make([]bool, st.frozenRows)
	fv := st.frozen.Versions()
	for _, pos := range st.frozen.VisibleRows(st.snapshot, 0) {
		if pos >= st.frozenRows {
			break // physical rows are fixed at freeze; defensive
		}
		tuple, err := st.frozen.GetRow(pos)
		if err != nil {
			return nil, fmt.Errorf("table %s: merge read delta row %d: %w", t.name, pos, err)
		}
		folded[pos] = true
		rows = append(rows, tuple)
		sources = append(sources, rowSource{main: false, pos: pos})
		begins = append(begins, fv.State(pos).Begin)
	}

	parts, err := t.buildMainParts(st.layout, rows)
	if err != nil {
		return nil, err
	}

	// Preserve each row's commit history so every open snapshot keeps
	// its exact visibility across the swap; deletes that commit during
	// the rebuild are replayed by the swap via sources.
	versions := mvcc.NewVersions()
	for _, begin := range begins {
		versions.AppendAt(begin, mvcc.Infinity)
	}

	b := &builtMain{
		parts:      parts,
		rows:       len(rows),
		versions:   versions,
		indexes:    make(map[int]*bptree.Tree, len(st.indexCols)),
		composites: make(map[string]compositeIndex, len(st.compositeSets)),
		sources:    sources,
		folded:     folded,
		carry:      carry,
	}
	if err := b.buildIndexes(t.schema, st, rows); err != nil {
		if parts.group != nil {
			_ = parts.group.Free() // abandon the shadow SSCG, keep serving old main
		}
		return nil, err
	}
	return b, nil
}

// buildIndexes rebuilds the index set captured at freeze time against
// the shadow main's rows.
func (b *builtMain) buildIndexes(s *schema.Schema, st *mergeState, rows [][]value.Value) error {
	for _, col := range st.indexCols {
		tree := bptree.New(s.Field(col).Type)
		for r := range rows {
			tree.Insert(rows[r][col], uint32(r))
		}
		b.indexes[col] = tree
	}
	for _, cols := range st.compositeSets {
		tree := bptree.New(value.String)
		key := make([]value.Value, len(cols))
		for r := range rows {
			for i, c := range cols {
				key[i] = rows[r][c]
			}
			enc, err := keyenc.EncodeString(key)
			if err != nil {
				return fmt.Errorf("encode composite key: %w", err)
			}
			tree.Insert(value.NewString(enc), uint32(r))
		}
		b.composites[compositeKeyName(cols)] = compositeIndex{
			cols: append([]int(nil), cols...),
			tree: tree,
		}
	}
	return nil
}

// swapMain is phase 3: wait for the retiring partitions to quiesce,
// then atomically install the shadow main under the write lock,
// reconciling writes that landed during the rebuild.
func (t *Table) swapMain(st *mergeState, b *builtMain) error {
	fv := st.frozen.Versions()
	// Quiescence: no provisional insert or delete intent may remain on
	// the retiring partitions, otherwise its commit callback could fire
	// after the reconciliation below and be lost. Intents are only
	// created under the table's read lock, so holding the write lock
	// makes the settled state stable. Spin optimistically off-lock
	// first; under sustained writer pressure degrade to holding the
	// lock while the last writers resolve (commits touch only version
	// stores, never the table lock, so they proceed).
	for attempt := 0; ; attempt++ {
		if st.mainVersions.Unsettled() || fv.Unsettled() {
			if attempt > quiesceSpins {
				t.mu.Lock()
				for st.mainVersions.Unsettled() || fv.Unsettled() {
					time.Sleep(20 * time.Microsecond)
				}
				break
			}
			runtime.Gosched()
			continue
		}
		t.mu.Lock()
		if !st.mainVersions.Unsettled() && !fv.Unsettled() {
			break
		}
		t.mu.Unlock()
	}
	defer t.mu.Unlock()

	// Replay deletes that committed against the old locations while the
	// rebuild ran.
	for i, src := range b.sources {
		var rs mvcc.RowState
		if src.main {
			rs = st.mainVersions.State(src.pos)
		} else {
			rs = fv.State(src.pos)
		}
		if rs.End != mvcc.Infinity {
			b.versions.SetEnd(i, rs.End)
		}
	}

	// Re-base rows the shadow main missed into the active delta with
	// their original timestamps: frozen rows committed after the
	// snapshot (live or already deleted again) and carried old-main
	// rows. Rows dead at the oldest active snapshot are invisible to
	// every current and future reader and are purged instead.
	watermark := t.mgr.OldestActiveSnapshot()
	stragglers := 0
	adopt := func(tuple []value.Value, begin, end mvcc.Timestamp) error {
		if end <= watermark {
			return nil
		}
		if _, err := t.delta.AdoptRow(tuple, begin, end); err != nil {
			return err
		}
		stragglers++
		return nil
	}
	var adoptErr error
	for pos := 0; pos < st.frozenRows && adoptErr == nil; pos++ {
		if b.folded[pos] {
			continue
		}
		rs := fv.State(pos)
		if rs.Begin == 0 || rs.Begin == mvcc.Infinity {
			continue // aborted insert (quiescence rules out pending state)
		}
		var tuple []value.Value
		if tuple, adoptErr = st.frozen.GetRow(pos); adoptErr == nil {
			adoptErr = adopt(tuple, rs.Begin, rs.End)
		}
	}
	for i := 0; adoptErr == nil && i < len(b.carry); i++ {
		adoptErr = adopt(b.carry[i].tuple, b.carry[i].begin, b.carry[i].end)
	}
	if adoptErr != nil {
		// Unreachable with a matching schema; treated as a failed merge
		// (old main keeps serving, frozen delta retained for retry).
		t.merging = false
		if b.parts.group != nil {
			_ = b.parts.group.Free()
		}
		t.cMergeFails.Inc()
		return fmt.Errorf("table %s: merge swap: %w", t.name, adoptErr)
	}

	// Indexes created after the freeze exist on the retiring main but
	// not in the rebuilt set; note them for rebuilding below.
	var lateIdx []int
	for col := range t.indexes {
		if _, ok := b.indexes[col]; !ok {
			lateIdx = append(lateIdx, col)
		}
	}
	sort.Ints(lateIdx)
	var lateComp [][]int
	for name, ci := range t.composites {
		if _, ok := b.composites[name]; !ok {
			lateComp = append(lateComp, ci.cols)
		}
	}

	// Install. Every container is replaced wholesale; pinned views keep
	// aliasing the retired ones.
	oldEpoch := t.epoch
	t.mainRows = b.rows
	t.layout = append([]bool(nil), st.layout...)
	t.mrcs = b.parts.mrcs
	t.group = b.parts.group
	t.groupIdx = b.parts.groupIdx
	t.mainVersions = b.versions
	t.indexes = b.indexes
	t.composites = b.composites
	t.distinct = b.parts.distinct
	t.hists = b.parts.hists
	t.frozen = nil
	t.frozenRows = 0
	t.merging = false
	t.epoch = newEpoch(b.parts.group)
	t.cMerges.Inc()
	t.cSwaps.Inc()
	t.cMergeRows.Add(int64(b.rows))
	t.cStragglers.Add(int64(stragglers))
	t.gFrozenRows.Set(0)
	t.gActiveRows.Set(int64(t.delta.Rows()))
	// Drop the table's reference on the retired epoch: the old SSCG
	// pages return to the freelist now, or when the last pinned view
	// drains.
	oldEpoch.release()

	var idxErr error
	for _, col := range lateIdx {
		if err := t.buildIndexLocked(col); err != nil && idxErr == nil {
			idxErr = err
		}
	}
	for _, cols := range lateComp {
		if err := t.buildCompositeLocked(cols); err != nil && idxErr == nil {
			idxErr = err
		}
	}
	return idxErr
}

// MergeOffline is the blocking reference merge: it folds the delta
// under an exclusive lock held for the entire rebuild, exactly as the
// engine merged before the online path existed. The equivalence
// property tests replay committed histories through it and compare
// against online-merged tables. It refuses to run while an online merge
// is in flight.
func (t *Table) MergeOffline() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.merging || t.frozen != nil {
		return ErrMergeInProgress
	}

	snapshot := t.mgr.LastCommit()
	var rows [][]value.Value
	for row := 0; row < t.mainRows; row++ {
		if !t.mainVersions.Visible(row, snapshot, 0) {
			continue
		}
		tuple, err := t.tupleLocked(uint64(row))
		if err != nil {
			return fmt.Errorf("table %s: merge read main row %d: %w", t.name, row, err)
		}
		rows = append(rows, tuple)
	}
	for _, pos := range t.delta.VisibleRows(snapshot, 0) {
		tuple, err := t.delta.GetRow(pos)
		if err != nil {
			return fmt.Errorf("table %s: merge read delta row %d: %w", t.name, pos, err)
		}
		rows = append(rows, tuple)
	}

	parts, err := t.buildMainParts(t.layout, rows)
	if err != nil {
		return err
	}

	// Fresh MVCC state: all merged rows are committed & live.
	versions := mvcc.NewVersions()
	for range rows {
		versions.AppendCommitted(snapshot)
	}

	oldEpoch := t.epoch
	t.mainRows = len(rows)
	t.mrcs = parts.mrcs
	t.group = parts.group
	t.groupIdx = parts.groupIdx
	t.mainVersions = versions
	t.delta = delta.New(t.schema)
	t.delta.Observe(t.registry) // fresh partition, fresh handles
	t.distinct = parts.distinct
	t.hists = parts.hists
	t.epoch = newEpoch(parts.group)
	t.cMerges.Inc()
	t.gActiveRows.Set(0)
	oldEpoch.release()

	// Rebuild indexes over the new main partition.
	for col := range t.indexes {
		if err := t.buildIndexLocked(col); err != nil {
			return err
		}
	}
	for _, idx := range t.composites {
		if err := t.buildCompositeLocked(idx.cols); err != nil {
			return err
		}
	}
	return nil
}

// Merging reports whether an online merge is between freeze and swap.
func (t *Table) Merging() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.merging
}
