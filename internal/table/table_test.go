package table

import (
	"fmt"
	"testing"

	"tierdb/internal/amm"
	"tierdb/internal/schema"
	"tierdb/internal/storage"
	"tierdb/internal/value"
)

func testSchema() *schema.Schema {
	return schema.MustNew([]schema.Field{
		{Name: "id", Type: value.Int64},
		{Name: "qty", Type: value.Int64},
		{Name: "note", Type: value.String, Width: 12},
	})
}

func row(id, qty int64, note string) []value.Value {
	return []value.Value{value.NewInt(id), value.NewInt(qty), value.NewString(note)}
}

func loadedTable(t *testing.T, n int) *Table {
	t.Helper()
	tbl, err := New("t", testSchema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]value.Value, n)
	for i := range rows {
		rows[i] = row(int64(i), int64(i%10), fmt.Sprintf("note%d", i%3))
	}
	if err := tbl.BulkAppend(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", testSchema(), Options{}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New("t", nil, Options{}); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestBulkLoadAndMerge(t *testing.T) {
	tbl := loadedTable(t, 100)
	if tbl.MainRows() != 100 {
		t.Errorf("MainRows = %d", tbl.MainRows())
	}
	if tbl.DeltaRows() != 0 {
		t.Errorf("DeltaRows = %d after merge", tbl.DeltaRows())
	}
	if tbl.VisibleCount() != 100 {
		t.Errorf("VisibleCount = %d", tbl.VisibleCount())
	}
	// Default layout: everything MRC, no SSCG.
	if tbl.Group() != nil {
		t.Error("unexpected SSCG under full-DRAM layout")
	}
	got, err := tbl.GetTuple(42)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Int() != 42 || got[1].Int() != 2 || got[2].Str() != "note0" {
		t.Errorf("GetTuple(42) = %v", got)
	}
}

func TestApplyLayoutMovesColumnsToSSCG(t *testing.T) {
	tbl := loadedTable(t, 100)
	if err := tbl.ApplyLayout([]bool{true, false, false}); err != nil {
		t.Fatal(err)
	}
	if tbl.Group() == nil {
		t.Fatal("no SSCG after eviction")
	}
	if tbl.MRC(0) == nil || tbl.MRC(1) != nil || tbl.MRC(2) != nil {
		t.Error("MRC placement wrong")
	}
	if tbl.GroupField(0) != -1 || tbl.GroupField(1) != 0 || tbl.GroupField(2) != 1 {
		t.Errorf("group fields = %d %d %d", tbl.GroupField(0), tbl.GroupField(1), tbl.GroupField(2))
	}
	// Data survives the re-tiering.
	got, err := tbl.GetTuple(42)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Int() != 42 || got[1].Int() != 2 || got[2].Str() != "note0" {
		t.Errorf("GetTuple after eviction = %v", got)
	}
	// Single-cell reads hit the right tier.
	v, err := tbl.GetValue(42, 1)
	if err != nil || v.Int() != 2 {
		t.Errorf("GetValue(42,1) = %v, %v", v, err)
	}
	if tbl.SecondaryBytes() <= 0 {
		t.Error("SecondaryBytes not positive after eviction")
	}
	// Re-loading everything back into DRAM works too.
	if err := tbl.ApplyLayout([]bool{true, true, true}); err != nil {
		t.Fatal(err)
	}
	if tbl.Group() != nil {
		t.Error("SSCG left over after re-loading")
	}
	if tbl.ApplyLayout([]bool{true}) == nil {
		t.Error("short layout accepted")
	}
}

func TestInsertDeleteUpdateThroughTransactions(t *testing.T) {
	tbl := loadedTable(t, 10)
	mgr := tbl.Manager()

	// Insert a new row.
	tx := mgr.Begin()
	if err := tbl.Insert(tx, row(100, 5, "new")); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if tbl.VisibleCount() != 11 {
		t.Errorf("VisibleCount = %d after insert", tbl.VisibleCount())
	}

	// Delete a main-partition row.
	tx = mgr.Begin()
	if err := tbl.Delete(tx, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if tbl.VisibleCount() != 10 {
		t.Errorf("VisibleCount = %d after delete", tbl.VisibleCount())
	}
	late := mgr.Begin()
	if tbl.Visible(3, late.Snapshot(), late.ID()) {
		t.Error("deleted row visible")
	}
	// Close the reader: an open snapshot would (correctly) hold dead
	// versions in the delta across the merge below.
	if err := mgr.Abort(late); err != nil {
		t.Fatal(err)
	}

	// Update a main-partition row (delete + insert).
	tx = mgr.Begin()
	if err := tbl.Update(tx, 5, row(5, 99, "upd")); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if tbl.VisibleCount() != 10 {
		t.Errorf("VisibleCount = %d after update", tbl.VisibleCount())
	}

	// Merge compacts deletions and carries delta rows into main.
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	if tbl.MainRows() != 10 {
		t.Errorf("MainRows = %d after merge, want 10", tbl.MainRows())
	}
	if tbl.DeltaRows() != 0 {
		t.Errorf("DeltaRows = %d after merge", tbl.DeltaRows())
	}
	// The updated tuple survived with new values.
	found := false
	for r := 0; r < tbl.MainRows(); r++ {
		tuple, err := tbl.GetTuple(uint64(r))
		if err != nil {
			t.Fatal(err)
		}
		if tuple[0].Int() == 5 {
			found = true
			if tuple[1].Int() != 99 || tuple[2].Str() != "upd" {
				t.Errorf("updated tuple = %v", tuple)
			}
		}
		if tuple[0].Int() == 3 {
			t.Error("deleted tuple survived merge")
		}
	}
	if !found {
		t.Error("updated tuple missing after merge")
	}
}

func TestAbortRollsBack(t *testing.T) {
	tbl := loadedTable(t, 5)
	mgr := tbl.Manager()
	tx := mgr.Begin()
	if err := tbl.Insert(tx, row(50, 1, "x")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(tx, 0); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Abort(tx); err != nil {
		t.Fatal(err)
	}
	if tbl.VisibleCount() != 5 {
		t.Errorf("VisibleCount = %d after abort, want 5", tbl.VisibleCount())
	}
}

func TestIndexRebuildOnMerge(t *testing.T) {
	tbl := loadedTable(t, 50)
	if err := tbl.CreateIndex(0); err != nil {
		t.Fatal(err)
	}
	idx := tbl.Index(0)
	if idx == nil {
		t.Fatal("index missing")
	}
	if got := idx.Lookup(value.NewInt(17)); len(got) != 1 || got[0] != 17 {
		t.Errorf("index lookup = %v", got)
	}
	// After inserting + merging, the index covers the new row.
	mgr := tbl.Manager()
	tx := mgr.Begin()
	if err := tbl.Insert(tx, row(500, 0, "y")); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	idx = tbl.Index(0)
	if got := idx.Lookup(value.NewInt(500)); len(got) != 1 {
		t.Errorf("index missing merged row: %v", got)
	}
	if err := tbl.CreateIndex(99); err == nil {
		t.Error("out-of-range index column accepted")
	}
}

func TestIndexOverSSCGColumn(t *testing.T) {
	tbl := loadedTable(t, 30)
	if err := tbl.ApplyLayout([]bool{true, false, false}); err != nil {
		t.Fatal(err)
	}
	// Indexes stay DRAM-resident even over evicted columns.
	if err := tbl.CreateIndex(1); err != nil {
		t.Fatal(err)
	}
	got := tbl.Index(1).Lookup(value.NewInt(7))
	if len(got) != 3 { // qty = i%10 == 7 for rows 7,17,27
		t.Errorf("index over SSCG column found %d rows, want 3", len(got))
	}
}

func TestDistinctCountAndSelectivity(t *testing.T) {
	tbl := loadedTable(t, 100)
	if got := tbl.DistinctCount(1); got != 10 {
		t.Errorf("DistinctCount(qty) = %d, want 10", got)
	}
	if got := tbl.Selectivity(1); got != 0.1 {
		t.Errorf("Selectivity(qty) = %g, want 0.1", got)
	}
	// Statistics survive eviction (paper: selectivity estimates feed
	// the executor even for tiered columns).
	if err := tbl.ApplyLayout([]bool{true, false, false}); err != nil {
		t.Fatal(err)
	}
	if got := tbl.DistinctCount(1); got != 10 {
		t.Errorf("DistinctCount(qty) after eviction = %d, want 10", got)
	}
	if got := tbl.DistinctCount(99); got != 0 {
		t.Errorf("DistinctCount(out of range) = %d", got)
	}
}

func TestMemoryBytesShrinksWithEviction(t *testing.T) {
	tbl := loadedTable(t, 1000)
	full := tbl.MemoryBytes()
	if err := tbl.ApplyLayout([]bool{true, false, false}); err != nil {
		t.Fatal(err)
	}
	evicted := tbl.MemoryBytes()
	if evicted >= full {
		t.Errorf("MemoryBytes did not shrink: %d -> %d", full, evicted)
	}
}

func TestGetValueErrors(t *testing.T) {
	tbl := loadedTable(t, 5)
	if _, err := tbl.GetValue(0, 99); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := tbl.GetTuple(99); err == nil {
		t.Error("out-of-range tuple accepted")
	}
}

func TestTableWithCacheAndTimedStore(t *testing.T) {
	mem := storage.NewMemStore()
	cache, err := amm.New(8, mem)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := New("cached", testSchema(), Options{Store: mem, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]value.Value, 2000)
	for i := range rows {
		rows[i] = row(int64(i), int64(i%7), "c")
	}
	if err := tbl.BulkAppend(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.ApplyLayout([]bool{true, false, false}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := tbl.GetTuple(uint64(i % 5)); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Stats().Hits == 0 {
		t.Error("repeated tuple reconstructions never hit the cache")
	}
}
