package table

import (
	"testing"

	"tierdb/internal/value"
)

func TestCompositeIndexLookup(t *testing.T) {
	tbl := loadedTable(t, 100) // (id, qty=id%10, note=note{id%3})
	if err := tbl.CreateCompositeIndex([]int{1, 2}); err != nil {
		t.Fatal(err)
	}
	snap := tbl.Manager().LastCommit()
	// qty=7, note="note1": rows with id%10==7 and id%3==1 -> id in
	// {7, 37, 67, 97}.
	got, err := tbl.LookupComposite([]int{1, 2},
		[]value.Value{value.NewInt(7), value.NewString("note1")}, snap, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[RowID]bool{7: true, 37: true, 67: true, 97: true}
	if len(got) != len(want) {
		t.Fatalf("LookupComposite = %v", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Errorf("unexpected row %d", id)
		}
	}
}

func TestCompositeIndexCoversDelta(t *testing.T) {
	tbl := loadedTable(t, 20)
	if err := tbl.CreateCompositeIndex([]int{1, 2}); err != nil {
		t.Fatal(err)
	}
	mgr := tbl.Manager()
	tx := mgr.Begin()
	if err := tbl.Insert(tx, row(500, 7, "note1")); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	snap := mgr.LastCommit()
	got, err := tbl.LookupComposite([]int{1, 2},
		[]value.Value{value.NewInt(7), value.NewString("note1")}, snap, 0)
	if err != nil {
		t.Fatal(err)
	}
	foundDelta := false
	for _, id := range got {
		if id >= uint64(tbl.MainRows()) {
			foundDelta = true
		}
	}
	if !foundDelta {
		t.Errorf("delta row missing from composite lookup: %v", got)
	}
}

func TestCompositeIndexRebuiltOnMerge(t *testing.T) {
	tbl := loadedTable(t, 30)
	if err := tbl.CreateCompositeIndex([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	mgr := tbl.Manager()
	tx := mgr.Begin()
	if err := tbl.Insert(tx, row(999, 3, "x")); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	snap := mgr.LastCommit()
	got, err := tbl.LookupComposite([]int{0, 1},
		[]value.Value{value.NewInt(999), value.NewInt(3)}, snap, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("merged row not indexed: %v", got)
	}
	if n := len(tbl.CompositeIndexes()); n != 1 {
		t.Errorf("CompositeIndexes = %d", n)
	}
}

func TestCompositeIndexSurvivesEviction(t *testing.T) {
	tbl := loadedTable(t, 50)
	if err := tbl.ApplyLayout([]bool{true, false, false}); err != nil {
		t.Fatal(err)
	}
	// Composite index over one MRC and one SSCG column: indexes stay
	// DRAM-resident regardless of column placement.
	if err := tbl.CreateCompositeIndex([]int{1, 2}); err != nil {
		t.Fatal(err)
	}
	snap := tbl.Manager().LastCommit()
	got, err := tbl.LookupComposite([]int{1, 2},
		[]value.Value{value.NewInt(4), value.NewString("note1")}, snap, 0)
	if err != nil {
		t.Fatal(err)
	}
	// id%10==4 && id%3==1: ids 4, 34.
	if len(got) != 2 {
		t.Errorf("LookupComposite over tiered columns = %v", got)
	}
}

func TestCompositeIndexValidation(t *testing.T) {
	tbl := loadedTable(t, 5)
	if err := tbl.CreateCompositeIndex([]int{1}); err == nil {
		t.Error("single-column composite accepted")
	}
	if err := tbl.CreateCompositeIndex([]int{0, 99}); err == nil {
		t.Error("out-of-range column accepted")
	}
	if err := tbl.CreateCompositeIndex([]int{1, 1}); err == nil {
		t.Error("repeated column accepted")
	}
	if _, err := tbl.LookupComposite([]int{0, 1}, []value.Value{value.NewInt(1), value.NewInt(1)}, 1, 0); err == nil {
		t.Error("lookup on missing index accepted")
	}
	if err := tbl.CreateCompositeIndex([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.LookupComposite([]int{0, 1}, []value.Value{value.NewInt(1)}, 1, 0); err == nil {
		t.Error("short key accepted")
	}
}

func TestCompositeIndexVisibility(t *testing.T) {
	tbl := loadedTable(t, 10)
	if err := tbl.CreateCompositeIndex([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	mgr := tbl.Manager()
	tx := mgr.Begin()
	if err := tbl.Delete(tx, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	snap := mgr.LastCommit()
	got, err := tbl.LookupComposite([]int{0, 1},
		[]value.Value{value.NewInt(3), value.NewInt(3)}, snap, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("deleted row visible through composite index: %v", got)
	}
}
