package tierdb

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"tierdb/internal/obsrv"
	"tierdb/internal/server"
	"tierdb/internal/server/client"
)

// TestServeEndToEnd drives the full stack — Config.ListenAddr, the wire
// protocol, the dbEngine adapter — from a real network client.
func TestServeEndToEnd(t *testing.T) {
	db, err := Open(Config{ListenAddr: "127.0.0.1:0", WALDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	addr := db.ServerAddr()
	if addr == "" {
		t.Fatal("ServerAddr empty with ListenAddr set")
	}

	c, err := client.Dial(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fields := []Field{
		{Name: "id", Type: Int64Type},
		{Name: "amount", Type: Float64Type},
		{Name: "tag", Type: StringType, Width: 8},
	}
	if err := c.CreateTable("orders", fields); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("orders", []Value{Int(1), Float(9.5), String("a")}); err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, 0, 99)
	for i := int64(2); i <= 100; i++ {
		rows = append(rows, []Value{Int(i), Float(float64(i)), String("b")})
	}
	if err := c.BulkLoad("orders", rows); err != nil {
		t.Fatal(err)
	}
	n, err := c.Rows("orders")
	if err != nil || n != 100 {
		t.Fatalf("Rows = %d, %v; want 100", n, err)
	}

	res, err := c.Select("orders",
		[]server.Predicate{client.Between("id", Int(10), Int(19))}, "id", "tag")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 10 || len(res.Rows) != 10 {
		t.Fatalf("Select returned %d ids, %d rows; want 10", len(res.IDs), len(res.Rows))
	}
	for _, row := range res.Rows {
		if id := row[0].Int(); id < 10 || id > 19 || row[1].Str() != "b" {
			t.Fatalf("bad row %v", row)
		}
	}

	_, trace, err := c.SelectTraced("orders", []server.Predicate{client.Eq("id", Int(42))}, "id")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace, "orders") {
		t.Fatalf("trace %q does not mention the table", trace)
	}

	// Mutations through the service layer commit real transactions.
	if err := c.Update("orders", uint64(res.IDs[0]), []Value{Int(10), Float(0), String("upd")}); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("orders", uint64(res.IDs[1])); err != nil {
		t.Fatal(err)
	}
	if n, _ = c.Rows("orders"); n != 99 {
		t.Fatalf("Rows after delete = %d; want 99", n)
	}
	if err := c.Delete("orders", uint64(res.IDs[1])); err == nil {
		t.Fatal("double delete succeeded")
	}

	// Advisor and layout control over the wire.
	rep, err := c.Advise("orders", obsrv.AdvisorQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Table != "orders" || len(rep.Columns) != len(fields) {
		t.Fatalf("advisor report %+v", rep)
	}
	if err := c.ApplyLayout("orders", []bool{true, false, true}); err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyLayout("orders", []bool{true}); err == nil {
		t.Fatal("short layout vector accepted")
	}

	// Stats flow through, including the server's own instruments.
	snap, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.requests_total"] == 0 {
		t.Error("server.requests_total missing from engine stats")
	}
	if snap.Gauges["server.sessions"].Value < 1 {
		t.Errorf("server.sessions = %d; want >= 1", snap.Gauges["server.sessions"].Value)
	}

	names, err := c.Tables()
	if err != nil || len(names) != 1 || names[0] != "orders" {
		t.Fatalf("Tables = %v, %v", names, err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestServeDurableDrain proves the drain ordering in Close: acked
// writes from network clients survive a close-and-reopen of the same
// WAL directory.
func TestServeDurableDrain(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{ListenAddr: "127.0.0.1:0", WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(client.Config{Addr: dir2addr(t, db)})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("t", []Field{{Name: "id", Type: Int64Type}}); err != nil {
		t.Fatal(err)
	}
	const acked = 50
	for i := 0; i < acked; i++ {
		if err := c.Insert("t", []Value{Int(int64(i))}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	c.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Config{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Rows(); got != acked {
		t.Fatalf("recovered %d rows; want %d acked over the wire", got, acked)
	}
}

func dir2addr(t *testing.T, db *DB) string {
	t.Helper()
	addr := db.ServerAddr()
	if addr == "" {
		t.Fatal("no server address")
	}
	return addr
}

// TestServeCloseRejectsClients proves Close drains the service layer:
// after Close returns, the port no longer accepts, and a connected
// client's requests fail rather than hang.
func TestServeCloseRejectsClients(t *testing.T) {
	db, err := Open(Config{ListenAddr: "127.0.0.1:0", DrainTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	addr := db.ServerAddr()
	c, err := client.Dial(client.Config{Addr: addr, RequestTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err == nil {
		t.Fatal("ping succeeded after Close")
	}
	if _, err := client.Dial(client.Config{Addr: addr, DialTimeout: time.Second}); err == nil {
		t.Fatal("dial succeeded after Close")
	}
}

// TestServeTypedErrors proves admission-control errors keep their type
// across the wire and the root re-exports match.
func TestServeTypedErrors(t *testing.T) {
	db, err := Open(Config{ListenAddr: "127.0.0.1:0", MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c1, err := client.Dial(client.Config{Addr: db.ServerAddr(), PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	c2, err := client.Dial(client.Config{Addr: db.ServerAddr(), PoolSize: 1})
	if err == nil {
		err = c2.Ping()
		c2.Close()
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second session error = %v; want tierdb.ErrOverloaded", err)
	}
}

// TestServeCallerListener covers DB.Serve with a caller-owned listener.
func TestServeCallerListener(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go db.Serve(ln)
	c, err := client.Dial(client.Config{Addr: ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if db.ServerAddr() != ln.Addr().String() {
		t.Fatalf("ServerAddr = %q; want %q", db.ServerAddr(), ln.Addr().String())
	}
}
