package tierdb

import (
	"testing"
)

// buildTwoTables creates a hot table (frequently queried) and a cold
// table (rarely queried) of similar size.
func buildTwoTables(t *testing.T) (*DB, *Table, *Table) {
	t.Helper()
	db, err := Open(Config{Device: "3D XPoint"})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) *Table {
		tbl, err := db.CreateTable(name, []Field{
			{Name: "k", Type: Int64Type},
			{Name: "v", Type: Int64Type},
		})
		if err != nil {
			t.Fatal(err)
		}
		rows := make([][]Value, 2000)
		for i := range rows {
			rows[i] = []Value{Int(int64(i)), Int(int64(i % 50))}
		}
		if err := tbl.BulkLoad(rows); err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	hot, cold := mk("hot"), mk("cold")
	pHot, _ := hot.Eq("k", Int(7))
	for i := 0; i < 200; i++ {
		if _, err := hot.Select(nil, []Predicate{pHot}); err != nil {
			t.Fatal(err)
		}
	}
	pCold, _ := cold.Eq("k", Int(7))
	if _, err := cold.Select(nil, []Predicate{pCold}); err != nil {
		t.Fatal(err)
	}
	return db, hot, cold
}

func TestGlobalLayoutFavorsHotTable(t *testing.T) {
	db, hot, cold := buildTwoTables(t)
	// Budget fits roughly one table's filtered column: the shared pool
	// must flow to the hot table.
	budget := hot.Inner().ColumnBytes(0) + 1024
	g, err := db.RecommendGlobalLayout(PlacementOptions{Budget: budget, Method: MethodILP})
	if err != nil {
		t.Fatal(err)
	}
	if g.Memory > budget {
		t.Errorf("global memory %d over budget %d", g.Memory, budget)
	}
	if !g.PerTable["hot"].InDRAM[0] {
		t.Error("hot table's filtered column evicted despite shared budget")
	}
	if g.PerTable["cold"].InDRAM[0] {
		t.Error("cold table's filtered column kept over the hot one")
	}
	if err := db.ApplyGlobalLayout(g); err != nil {
		t.Fatal(err)
	}
	if hot.MemoryBytes() <= cold.MemoryBytes() {
		t.Errorf("hot table should hold more DRAM: %d vs %d", hot.MemoryBytes(), cold.MemoryBytes())
	}
	// Queries still correct on both tables.
	pHot, _ := hot.Eq("k", Int(7))
	res, err := hot.Select(nil, []Predicate{pHot})
	if err != nil || len(res.IDs) != 1 {
		t.Errorf("hot select after global layout: %v, %v", res, err)
	}
	pCold, _ := cold.Eq("k", Int(7))
	res, err = cold.Select(nil, []Predicate{pCold})
	if err != nil || len(res.IDs) != 1 {
		t.Errorf("cold select after global layout: %v, %v", res, err)
	}
}

func TestGlobalLayoutValidation(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.RecommendGlobalLayout(PlacementOptions{Budget: 100}); err == nil {
		t.Error("empty database accepted")
	}
	db2, _, _ := buildTwoTables(t)
	if _, err := db2.RecommendGlobalLayout(PlacementOptions{Budget: 100, Pinned: []string{"k"}}); err == nil {
		t.Error("name-based pins accepted in global optimization")
	}
}

func TestApplyGlobalLayoutUnknownTable(t *testing.T) {
	db, _, _ := buildTwoTables(t)
	bad := GlobalLayout{PerTable: map[string]Layout{"ghost": {InDRAM: []bool{true}}}}
	if err := db.ApplyGlobalLayout(bad); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestGroupByThroughFacade(t *testing.T) {
	_, tbl := openLoaded(t, 40)
	ids := make([]RowID, 40)
	for i := range ids {
		ids[i] = RowID(i)
	}
	groups, err := tbl.GroupBySum("region", "amount", ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 8 {
		t.Errorf("groups = %d, want 8", len(groups))
	}
	var total float64
	for _, v := range groups {
		total += v
	}
	want := 0.0
	for i := 0; i < 40; i++ {
		want += float64(i) / 2
	}
	if total != want {
		t.Errorf("grouped total = %g, want %g", total, want)
	}
	if _, err := tbl.GroupBySum("missing", "amount", nil); err == nil {
		t.Error("unknown group column accepted")
	}
	if _, err := tbl.GroupBySum("region", "missing", nil); err == nil {
		t.Error("unknown aggregate column accepted")
	}
}
