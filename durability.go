package tierdb

import (
	"fmt"
	"io"
	"time"

	"tierdb/internal/device"
	"tierdb/internal/mvcc"
	"tierdb/internal/persist"
	"tierdb/internal/schema"
	"tierdb/internal/table"
	"tierdb/internal/wal"
)

// SyncPolicy re-exports the write-ahead log's sync policy.
type SyncPolicy = wal.SyncPolicy

// Sync policies for Config.SyncPolicy.
const (
	// SyncAlways fsyncs before acknowledging every commit (group
	// committed: concurrent commits share one fsync). The default.
	SyncAlways = wal.SyncAlways
	// SyncGroup acknowledges immediately and fsyncs on a background
	// interval — a bounded loss window.
	SyncGroup = wal.SyncGroup
	// SyncOff leaves flushing to the OS entirely.
	SyncOff = wal.SyncOff
)

// openDurability recovers state from the WAL directory (checkpoint
// snapshots, then log replay), repairs the log, opens a fresh segment
// and threads the log into the commit path. Called by Open when
// Config.WALDir is set, before the merge scheduler starts.
func (db *DB) openDurability(cfg Config) error {
	fs := cfg.walFS
	if fs == nil {
		fs = wal.OSFS{}
	}
	if err := db.recover(fs, cfg.WALDir); err != nil {
		return err
	}
	log, err := wal.Open(wal.Options{
		FS:            fs,
		Dir:           cfg.WALDir,
		Policy:        cfg.SyncPolicy,
		GroupInterval: cfg.GroupCommitInterval,
		Registry:      db.registry,
	})
	if err != nil {
		return err
	}
	db.wal = log
	db.mgr.SetDurability(log)
	return nil
}

// recover rebuilds committed state: every checkpoint snapshot is loaded
// at its embedded snapshot timestamp, then the log replays on top,
// skipping per table whatever its snapshot already covers. Recovery
// time is dominated by decoding the MRC share back into DRAM — the
// paper's reduced-recovery-time motivation — and is reported via the
// wal.recovery_ns metric as modeled DRAM sequential-read time over the
// replayed bytes, which keeps the number machine-independent.
func (db *DB) recover(fs wal.FS, dir string) error {
	snaps, err := wal.ListSnapshots(fs, dir)
	if err != nil {
		return fmt.Errorf("tierdb: list snapshots: %w", err)
	}
	h := &replayHandler{db: db, snapTs: make(map[string]mvcc.Timestamp)}
	for _, name := range snaps {
		rc, err := fs.Open(dir + "/" + name)
		if err != nil {
			return fmt.Errorf("tierdb: open snapshot %s: %w", name, err)
		}
		inner, snapTs, err := persist.LoadAt(rc, table.Options{
			Store:    db.store,
			Cache:    db.cache,
			Manager:  db.mgr,
			Registry: db.registry,
		})
		rc.Close()
		if err != nil {
			return fmt.Errorf("tierdb: snapshot %s: %w", name, err)
		}
		db.addTable(inner)
		h.snapTs[inner.Name()] = snapTs
	}
	stats, err := wal.Replay(fs, dir, h)
	if err != nil {
		return err
	}
	db.mgr.AdvanceTo(stats.MaxTs)
	if db.registry != nil {
		db.registry.Counter("wal.replayed_records").Add(int64(stats.Records))
		db.registry.Counter("wal.replayed_bytes").Add(stats.Bytes)
		// Modeled, deterministic recovery time: DRAM sequential read of
		// the replayed log bytes (single threaded, as replay is).
		db.registry.Counter("wal.recovery_ns").Add(int64(device.DRAM.SequentialReadTime(stats.Bytes, 1) / time.Nanosecond))
	}
	return nil
}

// replayHandler applies decoded WAL records to the database. Ops at or
// below a table's snapshot timestamp are already in its checkpoint
// snapshot and replay idempotently as no-ops.
type replayHandler struct {
	db     *DB
	snapTs map[string]mvcc.Timestamp
}

func (h *replayHandler) table(name string) (*Table, error) {
	h.db.mu.Lock()
	defer h.db.mu.Unlock()
	if t, ok := h.db.tables[name]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("tierdb: replay references unknown table %q", name)
}

func (h *replayHandler) CreateTable(name string, fields []schema.Field) error {
	h.db.mu.Lock()
	_, exists := h.db.tables[name]
	h.db.mu.Unlock()
	if exists {
		// Restored from a checkpoint snapshot already.
		return nil
	}
	s, err := schema.New(fields)
	if err != nil {
		return fmt.Errorf("tierdb: replay create table %q: %w", name, err)
	}
	inner, err := table.New(name, s, table.Options{
		Store:    h.db.store,
		Cache:    h.db.cache,
		Manager:  h.db.mgr,
		Registry: h.db.registry,
	})
	if err != nil {
		return err
	}
	h.db.addTable(inner)
	return nil
}

func (h *replayHandler) ApplyLayout(name string, layout []bool) error {
	t, err := h.table(name)
	if err != nil {
		return err
	}
	return t.inner.ApplyLayout(layout)
}

func (h *replayHandler) CreateIndex(name string, cols []int) error {
	t, err := h.table(name)
	if err != nil {
		return err
	}
	if len(cols) == 1 {
		return t.inner.CreateIndex(cols[0])
	}
	return t.inner.CreateCompositeIndex(cols)
}

func (h *replayHandler) Commit(ts mvcc.Timestamp, ops []mvcc.RedoOp) error {
	for _, op := range ops {
		if ts <= h.snapTs[op.Table] {
			continue // covered by the table's checkpoint snapshot
		}
		t, err := h.table(op.Table)
		if err != nil {
			return err
		}
		if op.Delete {
			err = t.inner.ReplayDelete(op.Row, ts)
		} else {
			err = t.inner.ReplayInsert(op.Row, ts)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (h *replayHandler) Checkpoint(mvcc.Timestamp) {}

// addTable registers a recovered or restored engine table under the
// public handle.
func (db *DB) addTable(inner *table.Table) *Table {
	t := newTableHandle(db, inner)
	db.mu.Lock()
	db.tables[inner.Name()] = t
	db.mu.Unlock()
	return t
}

// Checkpoint takes a durable, snapshot-consistent checkpoint of every
// table and truncates the write-ahead log: it seals the current log
// segment, quiesces the commit pipeline for an exact snapshot
// timestamp, writes each table's snapshot (temp file, fsync, rename,
// directory fsync), durably logs checkpoint-end and deletes the sealed
// segments. Restart cost afterwards is the snapshots' MRC decode plus
// only the log written since. No-op error when the database has no WAL.
//
// The merge scheduler checkpoints automatically after a scheduled
// merge; call this directly around bulk work or before shutdown.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return fmt.Errorf("tierdb: no write-ahead log configured")
	}
	// Serialized: overlapping checkpoints could truncate a segment whose
	// records only a still-unwritten snapshot covers.
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	if err := db.wal.BeginCheckpoint(); err != nil {
		return err
	}
	snapTs := db.mgr.QuiescedLastCommit()
	if err := db.wal.AppendCheckpointBegin(snapTs); err != nil {
		return err
	}
	db.mu.Lock()
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.mu.Unlock()
	for _, t := range tables {
		inner := t.inner
		err := db.wal.WriteSnapshot(inner.Name()+wal.SnapSuffix, func(w io.Writer) error {
			return persist.SaveAt(w, inner, snapTs)
		})
		if err != nil {
			return fmt.Errorf("tierdb: checkpoint %s: %w", inner.Name(), err)
		}
	}
	return db.wal.EndCheckpoint(snapTs)
}
