package tierdb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tierdb/internal/core"
	"tierdb/internal/metrics"
	"tierdb/internal/obsrv"
	"tierdb/internal/table"
	"tierdb/internal/workload"
)

// AdaptiveReport is the adaptive placement scheduler's status: config,
// lifetime totals and the last decision per table (also served on
// /layout/adaptive).
type AdaptiveReport = obsrv.AdaptiveReport

// AdaptiveDecision is one table's most recent adaptive decision.
type AdaptiveDecision = obsrv.AdaptiveDecision

// Adaptive placement defaults (Config.Adaptive* zero values).
const (
	// DefaultAdaptiveInterval is the daemon's cycle cadence when
	// adaptation is enabled without an explicit interval.
	DefaultAdaptiveInterval = 30 * time.Second
	// DefaultAdaptiveMinGain is the hysteresis floor: a re-solve must
	// promise at least this relative modeled-cost improvement before
	// the daemon re-tiers a table.
	DefaultAdaptiveMinGain = 0.01
	// DefaultAdaptiveMaxMove caps how much of a table may relocate in
	// one cycle, as a fraction of its total column bytes.
	DefaultAdaptiveMaxMove = 0.5
	// DefaultAdaptiveCooldown is how many cycles a table sits out after
	// a flip-back (re-applying the layout it just moved away from), so
	// drifting estimates cannot flap a layout every cycle.
	DefaultAdaptiveCooldown = 3
)

// adaptiveState is the per-table memory the guardrails need across
// cycles: the layout the last apply moved away from (to detect a
// flip-back) and the remaining cooldown.
type adaptiveState struct {
	prevLayout []bool // layout before the last adaptive apply; nil until one happened
	cooldown   int
}

// adaptiveScheduler closes the paper's loop: it periodically rotates
// each table's workload-history window, re-solves the explicit column
// selection model with reallocation costs (Theorem 2 on formulation
// (6)-(7), y = the current placement), and applies the recommendation
// online through the same ApplyLayout path a DBA would use — WAL-logged
// DDL, so adapted placements survive recovery.
//
// Like the merge scheduler it owns one goroutine; applies run there one
// at a time, never overlapping a merge of the same table (the table
// layer rejects overlap, and the daemon skips tables that are
// mid-merge), and each durable apply is sealed with a checkpoint, which
// db.ckptMu serializes against every other checkpoint.
type adaptiveScheduler struct {
	db       *DB
	interval time.Duration
	alpha    float64 // >0 selects the penalty form F(x)+alpha*M(x)
	beta     float64 // reallocation cost per moved byte
	budget   int64   // hard budget; 0 = current modeled footprint
	minGain  float64
	maxMove  float64
	cooldown int

	trigger  chan chan error // AdaptOnce rendezvous
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu      sync.Mutex
	enabled bool
	cycles  uint64
	applies uint64
	skips   uint64
	errs    uint64
	moved   int64
	last    map[string]AdaptiveDecision
	state   map[string]*adaptiveState

	cCycles *metrics.Counter
	cApply  *metrics.Counter
	cSkip   *metrics.Counter
	cErr    *metrics.Counter
	cMoved  *metrics.Counter
	hSolve  *metrics.Histogram
}

// startAdaptiveScheduler launches the daemon goroutine. It always
// starts (AdaptOnce and the server opcodes work regardless); the
// periodic loop only acts while enabled, which Config.AdaptiveInterval
// > 0 turns on at boot.
func startAdaptiveScheduler(db *DB, cfg Config) *adaptiveScheduler {
	s := &adaptiveScheduler{
		db:       db,
		interval: cfg.AdaptiveInterval,
		alpha:    cfg.AdaptiveAlpha,
		beta:     cfg.AdaptiveBeta,
		budget:   cfg.AdaptiveBudget,
		minGain:  cfg.AdaptiveMinGain,
		maxMove:  cfg.AdaptiveMaxMove,
		cooldown: cfg.AdaptiveCooldown,
		enabled:  cfg.AdaptiveInterval > 0,
		trigger:  make(chan chan error),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		last:     make(map[string]AdaptiveDecision),
		state:    make(map[string]*adaptiveState),
	}
	if s.interval <= 0 {
		s.interval = DefaultAdaptiveInterval
	}
	if s.minGain <= 0 {
		s.minGain = DefaultAdaptiveMinGain
	}
	if s.maxMove <= 0 || s.maxMove > 1 {
		s.maxMove = DefaultAdaptiveMaxMove
	}
	if s.cooldown <= 0 {
		s.cooldown = DefaultAdaptiveCooldown
	}
	r := db.registry
	s.cCycles = r.Counter("adaptive.cycles")
	s.cApply = r.Counter("adaptive.applies")
	s.cSkip = r.Counter("adaptive.skips")
	s.cErr = r.Counter("adaptive.errors")
	s.cMoved = r.Counter("adaptive.moved_bytes")
	s.hSolve = r.Histogram("adaptive.solve_ns", metrics.IOLatencyBuckets())
	go s.loop()
	return s
}

func (s *adaptiveScheduler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case reply := <-s.trigger:
			s.cycle()
			reply <- nil
		case <-t.C:
			s.mu.Lock()
			enabled := s.enabled
			s.mu.Unlock()
			if enabled {
				s.cycle()
			}
		}
	}
}

// shutdown stops the daemon and waits for an in-flight cycle; safe to
// call more than once.
func (s *adaptiveScheduler) shutdown() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// cycle runs one adaptation pass over every table.
func (s *adaptiveScheduler) cycle() {
	s.mu.Lock()
	s.cycles++
	cycle := s.cycles
	s.mu.Unlock()
	s.cCycles.Inc()
	s.db.mu.Lock()
	tables := make([]*Table, 0, len(s.db.tables))
	for _, t := range s.db.tables {
		tables = append(tables, t)
	}
	s.db.mu.Unlock()
	for _, t := range tables {
		d := s.adaptTable(t, cycle)
		s.mu.Lock()
		s.last[d.Table] = d
		switch d.Action {
		case "applied":
			s.applies++
			s.moved += d.MovedBytes
		case "skipped":
			s.skips++
			s.cSkip.Inc()
		case "error":
			s.errs++
			s.cErr.Inc()
		}
		s.mu.Unlock()
		switch d.Action {
		case "applied":
			s.db.log.Info("adaptive placement applied",
				"table", d.Table, "cycle", cycle, "moved_bytes", d.MovedBytes,
				"improvement", d.Improvement, "reason", d.Reason)
		case "error":
			s.db.log.Warn("adaptive placement error",
				"table", d.Table, "cycle", cycle, "reason", d.Reason)
		}
	}
}

// adaptTable decides and (maybe) applies one table's placement for this
// cycle. The guardrail ladder runs cheapest-first; the first rung that
// fires wins and is reported as the decision's reason.
func (s *adaptiveScheduler) adaptTable(t *Table, cycle uint64) AdaptiveDecision {
	d := AdaptiveDecision{Table: t.Name(), Cycle: cycle}
	st := s.tableState(t.Name())
	cooldownWas := st.cooldown
	if st.cooldown > 0 {
		st.cooldown--
	}
	plans := t.history.Rotate()
	for _, p := range plans {
		d.WindowQueries += p.Count
	}
	if len(plans) == 0 {
		d.Action, d.Reason = "skipped", "no workload in window"
		return d
	}
	w, err := workload.ExtractPlans(t.inner, plans, nil)
	if err != nil {
		d.Action, d.Reason = "error", err.Error()
		return d
	}
	// Columns with enough runtime selectivity observations feed the
	// model their EWMA, exactly like the on-demand advisor.
	for i := range w.Columns {
		if sel, n := t.inner.ObservedSelectivity(i); n >= int64(DefaultAdvisorMinSamples) && sel > 0 {
			w.Columns[i].Selectivity = sel
		}
	}
	costs := core.DefaultCostParams()
	current := t.inner.Layout()
	start := time.Now()
	alloc, err := s.solve(w, costs, current)
	d.SolveNs = time.Since(start).Nanoseconds()
	s.hSolve.Observe(d.SolveNs)
	if err != nil {
		d.Action, d.Reason = "error", err.Error()
		return d
	}
	d.Current = current
	d.Recommended = alloc.InDRAM
	// The guardrail compares the objective the solver minimizes: plain
	// scan cost under a hard budget, F(x) + alpha*M(x) in penalty mode
	// (where an apply may trade scan time for DRAM rent).
	d.CurrentCost = core.ScanCost(w, costs, current) + s.alpha*float64(core.MemoryUsed(w, current))
	d.RecommendedCost = alloc.Cost + s.alpha*float64(alloc.Memory)
	if d.CurrentCost > 0 {
		d.Improvement = (d.CurrentCost - d.RecommendedCost) / d.CurrentCost
	}
	var total int64
	for i, c := range w.Columns {
		total += c.Size
		if current[i] != alloc.InDRAM[i] {
			d.MovedBytes += c.Size
		}
	}
	if d.MovedBytes == 0 {
		// Converged: the placement already is the model's answer. A
		// clean convergence also clears any pending cooldown — the
		// estimates stopped drifting.
		st.cooldown = 0
		d.Action, d.Reason = "skipped", "layout already optimal"
		return d
	}
	if cooldownWas > 0 {
		d.CooldownLeft = st.cooldown
		d.Action = "skipped"
		d.Reason = fmt.Sprintf("flip-back cooldown (%d cycles left)", st.cooldown)
		return d
	}
	if d.Improvement < s.minGain {
		d.Action = "skipped"
		d.Reason = fmt.Sprintf("modeled gain %.4f below min gain %.4f", d.Improvement, s.minGain)
		return d
	}
	if total > 0 && float64(d.MovedBytes) > s.maxMove*float64(total) {
		d.Action = "skipped"
		d.Reason = fmt.Sprintf("would move %d of %d bytes, over the %.0f%% per-cycle cap",
			d.MovedBytes, total, 100*s.maxMove)
		return d
	}
	if t.Merging() {
		d.Action, d.Reason = "skipped", "online merge in flight"
		return d
	}
	flipBack := st.prevLayout != nil && equalLayout(alloc.InDRAM, st.prevLayout)
	if err := t.ApplyLayout(Layout{InDRAM: alloc.InDRAM}); err != nil {
		if errors.Is(err, table.ErrMergeInProgress) {
			d.Action, d.Reason = "skipped", "online merge in flight"
			return d
		}
		d.Action, d.Reason = "error", err.Error()
		return d
	}
	s.cApply.Inc()
	s.cMoved.Add(d.MovedBytes)
	st.prevLayout = current
	d.Action, d.Reason = "applied", "re-solved placement"
	if flipBack {
		// We just undid our own previous apply: the estimates are
		// oscillating around a boundary. Sit out the next cycles so the
		// flap rate is bounded by the cooldown, not the cycle cadence.
		st.cooldown = s.cooldown
		d.CooldownLeft = st.cooldown
		d.Reason = "re-solved placement (flip-back; cooling down)"
	}
	if s.db.wal != nil {
		// Seal the WAL-logged layout DDL with a checkpoint, like a
		// scheduled merge does; a failed checkpoint only means recovery
		// replays a longer log.
		if err := s.db.Checkpoint(); err != nil {
			s.db.log.Warn("post-adapt checkpoint failed", "table", d.Table, "err", err)
		}
	}
	return d
}

// solve is the daemon's re-solve: the explicit Theorem-2 path with
// reallocation costs. AdaptiveAlpha > 0 selects the penalty form
// (every column whose S_i + alpha + beta*(1-2y_i) is negative stays in
// DRAM); otherwise the budget form keeps the table within
// AdaptiveBudget bytes (its zero value: the current modeled footprint,
// "spend these same bytes better").
func (s *adaptiveScheduler) solve(w *core.Workload, costs core.CostParams, current []bool) (core.Allocation, error) {
	if s.alpha > 0 {
		return core.ContinuousPenaltyRealloc(w, costs, s.alpha, current, s.beta)
	}
	budget := s.budget
	if budget == 0 {
		budget = core.MemoryUsed(w, current)
	}
	return core.ExplicitForBudget(w, costs, budget, current, s.beta)
}

func (s *adaptiveScheduler) tableState(name string) *adaptiveState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.state[name]
	if !ok {
		st = &adaptiveState{}
		s.state[name] = st
	}
	return st
}

func equalLayout(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// report builds the /layout/adaptive answer.
func (s *adaptiveScheduler) report() *AdaptiveReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := &AdaptiveReport{
		Enabled:         s.enabled,
		IntervalNs:      s.interval.Nanoseconds(),
		Alpha:           s.alpha,
		Beta:            s.beta,
		BudgetBytes:     s.budget,
		MinGain:         s.minGain,
		MaxMoveFraction: s.maxMove,
		CooldownCycles:  s.cooldown,
		Cycles:          s.cycles,
		Applies:         s.applies,
		Skips:           s.skips,
		Errors:          s.errs,
		MovedBytes:      s.moved,
	}
	for _, d := range s.last {
		rep.Tables = append(rep.Tables, d)
	}
	sort.Slice(rep.Tables, func(i, j int) bool { return rep.Tables[i].Table < rep.Tables[j].Table })
	return rep
}

// AdaptOnce runs one synchronous adaptation cycle on the daemon
// goroutine — every table's history window rotates, the model re-solves
// and guardrails gate the applies, exactly as a timer tick would, but
// deterministically under test control. It works even while periodic
// adaptation is disabled. Returns ErrClosed after DB.Close.
func (db *DB) AdaptOnce() error {
	reply := make(chan error, 1)
	select {
	case <-db.adapt.stop:
		return ErrClosed
	case db.adapt.trigger <- reply:
		return <-reply
	}
}

// SetAdaptive enables or disables the periodic adaptive placement
// loop at runtime (also reachable over the wire protocol).
func (db *DB) SetAdaptive(enabled bool) {
	db.adapt.mu.Lock()
	db.adapt.enabled = enabled
	db.adapt.mu.Unlock()
}

// AdaptiveEnabled reports whether the periodic loop is on.
func (db *DB) AdaptiveEnabled() bool {
	db.adapt.mu.Lock()
	defer db.adapt.mu.Unlock()
	return db.adapt.enabled
}

// AdaptiveStatus reports the daemon's configuration, lifetime totals
// and last per-table decisions.
func (db *DB) AdaptiveStatus() *AdaptiveReport { return db.adapt.report() }
