package tierdb

import (
	"errors"
	"sync"
	"time"

	"tierdb/internal/table"
)

// ErrClosed is returned by merge requests after DB.Close.
var ErrClosed = errors.New("tierdb: database closed")

// ErrMergeInProgress is returned by Table.Merge when another online
// merge of the same table is already in flight (for example one the
// scheduler started); the caller can retry once it drains.
var ErrMergeInProgress = table.ErrMergeInProgress

// DefaultMergeInterval is the merge scheduler's poll cadence when
// thresholds are configured but no interval is given.
const DefaultMergeInterval = 100 * time.Millisecond

// mergeScheduler runs online delta merges in the background. Every
// database owns one: it serves manual Table.MergeAsync requests always,
// and additionally sweeps all tables on a ticker when delta-size
// thresholds are configured, merging any table whose active delta has
// outgrown them. Merges are the table layer's online kind — they hold
// the table lock only for the freeze and swap instants — so a scheduled
// merge never stalls the workload it is cleaning up after.
//
// All merges run on the scheduler goroutine, one at a time; the table
// layer would reject overlap per table anyway (ErrMergeInProgress), and
// serializing across tables keeps the background DRAM spike to one
// shadow main.
type mergeScheduler struct {
	db       *DB
	interval time.Duration
	rows     int
	bytes    int64
	trigger  chan *Table
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// startMergeScheduler launches the scheduler goroutine for db.
func startMergeScheduler(db *DB, cfg Config) *mergeScheduler {
	s := &mergeScheduler{
		db:       db,
		interval: cfg.MergeInterval,
		rows:     cfg.MergeDeltaRows,
		bytes:    cfg.MergeDeltaBytes,
		trigger:  make(chan *Table, 64),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if s.interval <= 0 {
		s.interval = DefaultMergeInterval
	}
	go s.loop()
	return s
}

func (s *mergeScheduler) loop() {
	defer close(s.done)
	var tick <-chan time.Time
	if s.rows > 0 || s.bytes > 0 {
		t := time.NewTicker(s.interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-s.stop:
			return
		case t := <-s.trigger:
			s.merge(t)
		case <-tick:
			s.sweep()
		}
	}
}

// sweep merges every table whose active delta exceeds a threshold.
func (s *mergeScheduler) sweep() {
	s.db.mu.Lock()
	tables := make([]*Table, 0, len(s.db.tables))
	for _, t := range s.db.tables {
		tables = append(tables, t)
	}
	s.db.mu.Unlock()
	for _, t := range tables {
		if s.due(t) {
			s.merge(t)
		}
	}
}

// due reports whether t's active delta has outgrown a threshold.
func (s *mergeScheduler) due(t *Table) bool {
	if s.rows > 0 && t.inner.ActiveDeltaRows() >= s.rows {
		return true
	}
	return s.bytes > 0 && t.inner.DeltaBytes() >= s.bytes
}

// merge folds one table's delta. A concurrent manual merge is fine
// (ErrMergeInProgress); real failures are already counted by the
// table's merge.failures instrument and will be retried on the next
// sweep, which resumes from the still-frozen delta. After a successful
// scheduled merge the database checkpoints: the merged state lands in
// durable snapshots and the write-ahead log truncates, so recovery
// replays only the tail written since — the paper's tiered layouts keep
// that snapshot-decode cost proportional to the MRC share.
func (s *mergeScheduler) merge(t *Table) {
	if err := t.inner.Merge(); err != nil {
		if !errors.Is(err, table.ErrMergeInProgress) {
			s.db.log.Warn("scheduled merge failed", "table", t.Name(), "err", err)
		}
		return
	}
	if s.db.wal != nil {
		// A failed checkpoint leaves the previous one intact; the log
		// simply stays longer until the next scheduled merge retries.
		if err := s.db.Checkpoint(); err != nil {
			s.db.log.Warn("post-merge checkpoint failed", "table", t.Name(), "err", err)
		}
	}
}

// shutdown stops the scheduler and waits for an in-flight merge to
// finish; safe to call more than once.
func (s *mergeScheduler) shutdown() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// MergeAsync queues a background online merge of the table's delta and
// returns immediately; the merge scheduler performs the fold while
// readers and writers proceed. Returns ErrClosed after DB.Close.
func (t *Table) MergeAsync() error {
	// Check stop on its own first: the trigger channel is buffered, so
	// a combined select could accept the send after Close.
	select {
	case <-t.db.sched.stop:
		return ErrClosed
	default:
	}
	select {
	case <-t.db.sched.stop:
		return ErrClosed
	case t.db.sched.trigger <- t:
		return nil
	}
}

// Merging reports whether an online merge of this table is in flight
// (its delta is split into frozen + active partitions).
func (t *Table) Merging() bool { return t.inner.Merging() }
