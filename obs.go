package tierdb

import (
	"context"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"tierdb/internal/core"
	"tierdb/internal/obsrv"
	"tierdb/internal/trace"
	"tierdb/internal/workload"
)

// Observability report types; see DB.ServeObservability and
// Table.Advise.
type (
	// AdvisorQuery parameterizes the live layout advisor.
	AdvisorQuery = obsrv.AdvisorQuery
	// AdvisorReport is the advisor's answer: current vs recommended
	// placement with modeled costs.
	AdvisorReport = obsrv.AdvisorReport
	// TableWorkloadReport is the captured workload of one table as
	// served by /workload.
	TableWorkloadReport = obsrv.TableWorkload
)

// DefaultAdvisorMinSamples is how many observed-selectivity samples a
// column needs before the advisor trusts its runtime EWMA over the
// static 1/distinct estimate (AdvisorQuery.MinSamples zero value).
const DefaultAdvisorMinSamples = 5

// Observability builds the instance's observability server. Most
// callers use Config.ObsAddr or ServeObservability instead; this hook
// exists to mount the handler into an existing mux.
func (db *DB) Observability() *obsrv.Server {
	return &obsrv.Server{
		Snapshot:      db.Stats,
		Recent:        db.recent,
		Slow:          db.slow,
		SlowThreshold: db.slowThresh,
		Workload:      db.workloadReport,
		Tables:        db.Tables,
		Advise: func(name string, q obsrv.AdvisorQuery) (*obsrv.AdvisorReport, error) {
			t, err := db.Table(name)
			if err != nil {
				return nil, err
			}
			return t.Advise(q)
		},
		Adaptive: db.AdaptiveStatus,
		Spans:    db.tracer.Ring(),
		Ready:    db.Ready,
		Build:    buildInfo,
		Uptime:   func() time.Duration { return time.Since(db.start) },
		Explain: func(name string, specs []ExplainSpec, project []string, analyze bool) (*ExplainPlan, error) {
			// A sampled span links the plan to /trace/{id}; unsampled
			// runs get a nil span and the context flows through inert.
			span := db.tracer.Start("explain.query", trace.String("table", name))
			ctx := trace.NewContext(context.Background(), span)
			plan, err := db.Explain(ctx, name, specs, project, analyze)
			if span != nil {
				span.SetError(err)
				span.End()
			}
			return plan, err
		},
	}
}

// BuildInfo is the binary's build metadata, as exposed by the
// tierdb_build_info metric series.
type BuildInfo = obsrv.BuildInfo

// Build reports the binary's build metadata — the same version,
// revision and Go version the tierdb_build_info series exports.
func Build() BuildInfo { return buildInfo() }

// buildInfo reads build metadata for the tierdb_build_info series.
func buildInfo() obsrv.BuildInfo {
	bi := obsrv.BuildInfo{Version: "(devel)", GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if info.Main.Version != "" {
		bi.Version = info.Main.Version
	}
	if info.GoVersion != "" {
		bi.GoVersion = info.GoVersion
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			bi.Revision = s.Value
		}
	}
	return bi
}

// ServeObservability serves the observability endpoints on the given
// listener until the server or the database is closed. It blocks; run
// it in a goroutine when the caller owns the listener (Config.ObsAddr
// does this automatically).
func (db *DB) ServeObservability(l net.Listener) error {
	srv := &http.Server{Handler: db.Observability().Handler()}
	db.obsMu.Lock()
	db.obsSrvs = append(db.obsSrvs, srv)
	if db.obsAddr == "" {
		db.obsAddr = l.Addr().String()
	}
	db.obsMu.Unlock()
	if err := srv.Serve(l); err != http.ErrServerClosed {
		return err
	}
	return nil
}

// ObsURL returns the base URL of the first observability listener
// ("http://host:port"), or "" when none is serving. With ObsAddr ":0"
// this reports the actual port.
func (db *DB) ObsURL() string {
	db.obsMu.Lock()
	defer db.obsMu.Unlock()
	if db.obsAddr == "" {
		return ""
	}
	return "http://" + db.obsAddr
}

// workloadReport captures every table's workload for /workload.
func (db *DB) workloadReport() []obsrv.TableWorkload {
	db.mu.Lock()
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.mu.Unlock()
	out := make([]obsrv.TableWorkload, 0, len(tables))
	for _, t := range tables {
		out = append(out, t.WorkloadReport())
	}
	return out
}

// WorkloadReport captures the table's live workload: per-column model
// inputs (sizes, access counts g_i, estimated and observed
// selectivities s_i) and the plan cache (b_j, q_j), plus the open
// history window.
func (t *Table) WorkloadReport() obsrv.TableWorkload {
	s := t.inner.Schema()
	rep := obsrv.TableWorkload{
		Table:          t.inner.Name(),
		Rows:           t.inner.VisibleCount(),
		MemoryBytes:    t.inner.MemoryBytes(),
		SecondaryBytes: t.inner.SecondaryBytes(),
		ClosedWindows:  t.history.Windows(),
	}
	layout := t.inner.Layout()
	var access []float64
	if w, err := workload.Extract(t.inner, t.plans, nil); err == nil {
		access = w.AccessCounts()
	}
	for i := 0; i < s.Len(); i++ {
		col := obsrv.WorkloadColumn{
			Index:                i,
			Name:                 s.Field(i).Name,
			SizeBytes:            t.inner.ColumnBytes(i),
			InDRAM:               layout[i],
			EstimatedSelectivity: t.inner.Selectivity(i),
		}
		if access != nil {
			col.AccessCount = access[i]
		}
		if sel, n := t.inner.ObservedSelectivity(i); n > 0 {
			col.ObservedSelectivity, col.ObservedSamples = sel, n
		}
		rep.Columns = append(rep.Columns, col)
	}
	name := func(c int) string { return s.Field(c).Name }
	rep.Plans = planInfos(t.plans.Plans(), name)
	rep.CurrentWindow = planInfos(t.history.CurrentPlans(), name)
	return rep
}

func planInfos(plans []workload.Plan, name func(int) string) []obsrv.PlanInfo {
	out := make([]obsrv.PlanInfo, 0, len(plans))
	for _, p := range plans {
		names := make([]string, len(p.Columns))
		for i, c := range p.Columns {
			names[i] = name(c)
		}
		out = append(out, obsrv.PlanInfo{Columns: p.Columns, Names: names, Count: p.Count})
	}
	return out
}

// Advise re-runs the explicit column selection model (Theorem 2) on
// the table's captured workload and compares the result against the
// current placement. Columns with at least MinSamples runtime
// selectivity observations feed the model their EWMA instead of the
// static estimate. A zero BudgetBytes advises within the current
// modeled DRAM footprint — "could these bytes be spent better". A
// nonzero Beta charges reallocation costs (formulation (6)-(7)): the
// current layout becomes y and moving a byte between tiers costs Beta,
// so marginal wins no longer justify churn. The recommendation applies
// verbatim via ApplyLayout(Layout{InDRAM: rep.Recommended.InDRAM}).
// adviseInputs is the advisor's solve, factored out so that both
// Advise and EXPLAIN's placement-attribution section run exactly the
// same path: same workload extraction, same observed-selectivity
// overrides, same budget fallback, same explicit solve.
type adviseInputs struct {
	w          *core.Workload
	sources    []string
	samples    []int64
	observed   int
	minSamples int
	costs      core.CostParams
	current    []bool
	budget     int64
	alloc      core.Allocation
}

func (t *Table) adviseInputs(q AdvisorQuery) (*adviseInputs, error) {
	w, err := workload.Extract(t.inner, t.plans, nil)
	if err != nil {
		return nil, err
	}
	minSamples := q.MinSamples
	if minSamples <= 0 {
		minSamples = DefaultAdvisorMinSamples
	}
	sources := make([]string, len(w.Columns))
	samples := make([]int64, len(w.Columns))
	observed := 0
	for i := range w.Columns {
		sources[i] = "estimated"
		if sel, n := t.inner.ObservedSelectivity(i); n >= int64(minSamples) && sel > 0 {
			w.Columns[i].Selectivity = sel
			sources[i] = "observed"
			samples[i] = n
			observed++
		}
	}
	costs := core.DefaultCostParams()
	current := t.inner.Layout()
	budget := q.BudgetBytes
	if budget == 0 && q.RelativeBudget > 0 {
		budget = int64(q.RelativeBudget * float64(w.TotalSize()))
	}
	if budget == 0 {
		budget = core.MemoryUsed(w, current)
	}
	var warm []bool
	if q.Beta > 0 {
		warm = current
	}
	alloc, err := core.ExplicitForBudget(w, costs, budget, warm, q.Beta)
	if err != nil {
		return nil, err
	}
	return &adviseInputs{
		w: w, sources: sources, samples: samples, observed: observed,
		minSamples: minSamples, costs: costs, current: current,
		budget: budget, alloc: alloc,
	}, nil
}

func (t *Table) Advise(q AdvisorQuery) (*AdvisorReport, error) {
	in, err := t.adviseInputs(q)
	if err != nil {
		return nil, err
	}
	w, sources, samples := in.w, in.sources, in.samples
	observed, costs, current := in.observed, in.costs, in.current
	budget, alloc := in.budget, in.alloc
	minSamples := in.minSamples
	curCost := core.ScanCost(w, costs, current)
	changed := false
	for i := range current {
		if current[i] != alloc.InDRAM[i] {
			changed = true
			break
		}
	}
	var queries float64
	for _, qy := range w.Queries {
		queries += qy.Frequency
	}
	rep := &AdvisorReport{
		Table:           t.inner.Name(),
		Method:          MethodExplicit.String(),
		BudgetBytes:     budget,
		RelativeBudget:  q.RelativeBudget,
		Beta:            q.Beta,
		MinSamples:      minSamples,
		ObservedColumns: observed,
		Queries:         queries,
		Current: obsrv.Placement{
			InDRAM:      current,
			MemoryBytes: core.MemoryUsed(w, current),
			ModeledCost: curCost,
		},
		Recommended: obsrv.Placement{
			InDRAM:      alloc.InDRAM,
			MemoryBytes: alloc.Memory,
			ModeledCost: alloc.Cost,
		},
		CostDelta: alloc.Cost - curCost,
		Changed:   changed,
	}
	if curCost > 0 {
		rep.Improvement = (curCost - alloc.Cost) / curCost
	}
	access := w.AccessCounts()
	for i, c := range w.Columns {
		rep.Columns = append(rep.Columns, obsrv.AdvisorColumn{
			Index:             i,
			Name:              c.Name,
			SizeBytes:         c.Size,
			Selectivity:       c.Selectivity,
			SelectivitySource: sources[i],
			ObservedSamples:   samples[i],
			AccessCount:       access[i],
			InDRAMNow:         current[i],
			InDRAMRecommended: alloc.InDRAM[i],
		})
	}
	return rep, nil
}
